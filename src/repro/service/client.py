"""`SketchClient` / `AsyncSketchClient`: the sketch service client library.

Both clients expose the same call surface over the
:mod:`repro.service.protocol` frame format:

``hello`` / ``ping`` / ``stats``
    identity, liveness, and monitoring counters;
``feed(items, deltas)`` / ``feed_chunks(source, window=...)``
    update ingestion -- ``feed_chunks`` pipelines up to ``window``
    unacknowledged batches so the socket, the server's reader, and the
    fleet's scatter all overlap (the network edition of the ingest
    queue);
``estimate(items)`` / ``query(kind=...)``
    batched point estimates (exact int64 or bit-exact float64 arrays)
    and the family's native query (``kind="f2"`` -> ``f2_estimate``);
``snapshot()`` / ``load_snapshot(data)`` / ``checkpoint()``
    wire-format state movement -- the same fingerprint-verified bytes
    the in-process merge protocol trusts.

The sync client is a plain blocking socket (no event loop), which makes
it safe to drive from anywhere -- benchmark harnesses, shell tools,
worker threads.  The async client mirrors it coroutine-for-method for
callers already inside a loop (the coordinator uses it).

Server-side failures raise the *same* exceptions a local engine would
(:class:`~repro.distributed.codec.FingerprintMismatch`,
:class:`~repro.distributed.codec.SnapshotError`) or
:class:`~repro.service.protocol.ServiceError` carrying the remote
exception class; framing corruption raises
:class:`~repro.service.protocol.ProtocolError` and invalidates the
connection.  ``connect(retries=...)`` retries the TCP connect with a
fixed interval, which is all a client needs to ride out a server
restart (see the reconnect tests).
"""

from __future__ import annotations

import asyncio
import socket
import time
from collections import deque
from typing import Optional

import numpy as np

from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    make_request,
    raise_for_reply,
    read_message,
    recv_message,
    send_message,
    unpack_array,
    write_message,
    ProtocolError,
)

__all__ = ["SketchClient", "AsyncSketchClient"]

#: Default pipelining window for feed_chunks (unacknowledged batches).
DEFAULT_WINDOW = 8


def _as_feed_arrays(items, deltas) -> tuple[np.ndarray, np.ndarray]:
    items = np.ascontiguousarray(items, dtype=np.int64)
    deltas = np.ascontiguousarray(deltas, dtype=np.int64)
    if items.shape != deltas.shape or items.ndim != 1:
        raise ValueError(
            "feed needs aligned one-dimensional items/deltas arrays, got "
            f"shapes {items.shape} and {deltas.shape}"
        )
    return items, deltas


class SketchClient:
    """Blocking-socket client for one :class:`SketchServer`.

    Usage::

        with SketchClient.connect("127.0.0.1", port) as client:
            client.feed(items, deltas)
            counts = client.estimate(probe_items)
    """

    def __init__(self, sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self._sock = sock
        self._max_frame = max_frame
        self._request_seq = 0
        self.server_info: Optional[dict] = None

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_interval: float = 0.05,
        max_frame: int = DEFAULT_MAX_FRAME,
        hello: bool = True,
    ) -> "SketchClient":
        """Connect (optionally retrying) and perform the ``hello`` handshake.

        ``retries`` extra attempts spaced ``retry_interval`` seconds apart
        ride out a server restart; the handshake pins the server's sketch
        class and construction fingerprint in ``client.server_info``.
        """
        attempt = 0
        while True:
            try:
                sock = socket.create_connection((host, port))
                break
            except OSError:
                attempt += 1
                if attempt > retries:
                    raise
                time.sleep(retry_interval)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client = cls(sock, max_frame=max_frame)
        if hello:
            client.server_info = client.hello()
        return client

    # -- plumbing -----------------------------------------------------------

    def _send(self, op: str, **fields) -> int:
        self._request_seq += 1
        send_message(self._sock, make_request(op, self._request_seq, **fields))
        return self._request_seq

    def _drain(self, request_id: int):
        return raise_for_reply(
            recv_message(self._sock, self._max_frame), request_id
        )

    def _request(self, op: str, **fields):
        return self._drain(self._send(op, **fields))

    # -- the call surface ---------------------------------------------------

    def hello(self) -> dict:
        """Server identity: sketch class, fingerprint, fleet shape."""
        return self._request("hello")

    def ping(self) -> dict:
        """Liveness probe; returns ``{"pong": True, "position": ...}``."""
        return self._request("ping")

    def stats(self) -> dict:
        """The server's operational monitoring counters."""
        return self._request("stats")

    def metrics(self) -> dict:
        """The server's fleet-merged telemetry.

        Returns ``{"server", "snapshot", "exposition", "content_type"}``
        -- the obs-registry snapshot (mergeable with other servers' via
        :func:`repro.obs.merge_snapshots`) plus its Prometheus text
        rendering.
        """
        return self._request("metrics")

    def alerts(self) -> dict:
        """The server's current alert states.

        Returns ``{"server", "alerts", "firing", "evaluated_at"}``; the
        rule list is empty on servers without an attached
        :class:`~repro.obs.alerts.AlertEngine`.  Each call runs one
        evaluation pass on the server, so polling cadence is evaluation
        cadence.
        """
        return self._request("alerts")

    def feed(self, items, deltas) -> dict:
        """Send one update batch; returns ``{"count", "position"}``."""
        items, deltas = _as_feed_arrays(items, deltas)
        return self._request("feed", items=items, deltas=deltas)

    def feed_chunks(self, source, window: int = DEFAULT_WINDOW) -> dict:
        """Stream ``(items, deltas)`` chunks with pipelined acknowledgements.

        Keeps up to ``window`` batches in flight: the socket send of
        chunk ``t+1`` overlaps the server's scatter of chunk ``t``.
        Returns ``{"count": total updates, "position": last ack'd}``.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        pending: deque[int] = deque()
        total = 0
        position = None
        for items, deltas in source:
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            pending.append(self._send("feed", items=items, deltas=deltas))
            if len(pending) >= window:
                position = self._drain(pending.popleft())["position"]
        while pending:
            position = self._drain(pending.popleft())["position"]
        return {"count": total, "position": position}

    def estimate(self, items) -> np.ndarray:
        """Batched point estimates from the server's merged state."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        return unpack_array(self._request("estimate", items=items))

    def query(self, kind: Optional[str] = None):
        """The sketch family's native query (``kind="f2"`` for F2)."""
        return self._request("query", kind=kind)

    def f2_estimate(self) -> float:
        """Second-moment estimate from the server's merged state."""
        return self.query(kind="f2")

    def snapshot(self) -> bytes:
        """Wire-format snapshot of the server's merged state."""
        return self._request("snapshot")

    def load_snapshot(self, data: bytes, position: Optional[int] = None) -> dict:
        """Restore a snapshot into the server's fleet (recovery)."""
        fields = {"snapshot": bytes(data)}
        if position is not None:
            fields["position"] = int(position)
        return self._request("load_snapshot", **fields)

    def checkpoint(self) -> dict:
        """Force a server-side checkpoint write now."""
        return self._request("checkpoint")

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SketchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncSketchClient:
    """Asyncio counterpart of :class:`SketchClient` (same surface)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._request_seq = 0
        self.server_info: Optional[dict] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_interval: float = 0.05,
        max_frame: int = DEFAULT_MAX_FRAME,
        hello: bool = True,
    ) -> "AsyncSketchClient":
        attempt = 0
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                attempt += 1
                if attempt > retries:
                    raise
                await asyncio.sleep(retry_interval)
        client = cls(reader, writer, max_frame=max_frame)
        if hello:
            client.server_info = await client.hello()
        return client

    # -- plumbing -----------------------------------------------------------

    async def _send(self, op: str, **fields) -> int:
        self._request_seq += 1
        await write_message(
            self._writer, make_request(op, self._request_seq, **fields)
        )
        return self._request_seq

    async def _drain(self, request_id: int):
        message = await read_message(self._reader, self._max_frame)
        if message is None:
            raise ProtocolError("connection closed while awaiting a reply")
        return raise_for_reply(message, request_id)

    async def _request(self, op: str, **fields):
        return await self._drain(await self._send(op, **fields))

    # -- the call surface ---------------------------------------------------

    async def hello(self) -> dict:
        """See :meth:`SketchClient.hello`."""
        return await self._request("hello")

    async def ping(self) -> dict:
        """See :meth:`SketchClient.ping`."""
        return await self._request("ping")

    async def stats(self) -> dict:
        """See :meth:`SketchClient.stats`."""
        return await self._request("stats")

    async def metrics(self) -> dict:
        """See :meth:`SketchClient.metrics`."""
        return await self._request("metrics")

    async def alerts(self) -> dict:
        """See :meth:`SketchClient.alerts`."""
        return await self._request("alerts")

    async def feed(self, items, deltas) -> dict:
        """See :meth:`SketchClient.feed`."""
        items, deltas = _as_feed_arrays(items, deltas)
        return await self._request("feed", items=items, deltas=deltas)

    async def feed_chunks(self, source, window: int = DEFAULT_WINDOW) -> dict:
        """Pipelined chunk streaming (see :meth:`SketchClient.feed_chunks`).

        ``source`` may be a sync or async iterable of chunk pairs.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        pending: deque[int] = deque()
        total = 0
        position = None

        async def _push(items, deltas) -> None:
            nonlocal position, total
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            pending.append(await self._send("feed", items=items, deltas=deltas))
            if len(pending) >= window:
                position = (await self._drain(pending.popleft()))["position"]

        if hasattr(source, "__aiter__"):
            async for items, deltas in source:
                await _push(items, deltas)
        else:
            for items, deltas in source:
                await _push(items, deltas)
        while pending:
            position = (await self._drain(pending.popleft()))["position"]
        return {"count": total, "position": position}

    async def estimate(self, items) -> np.ndarray:
        """See :meth:`SketchClient.estimate`."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        return unpack_array(await self._request("estimate", items=items))

    async def query(self, kind: Optional[str] = None):
        """See :meth:`SketchClient.query`."""
        return await self._request("query", kind=kind)

    async def f2_estimate(self) -> float:
        """See :meth:`SketchClient.f2_estimate`."""
        return await self.query(kind="f2")

    async def snapshot(self) -> bytes:
        """See :meth:`SketchClient.snapshot`."""
        return await self._request("snapshot")

    async def load_snapshot(self, data: bytes, position: Optional[int] = None) -> dict:
        """See :meth:`SketchClient.load_snapshot`."""
        fields = {"snapshot": bytes(data)}
        if position is not None:
            fields["position"] = int(position)
        return await self._request("load_snapshot", **fields)

    async def checkpoint(self) -> dict:
        """See :meth:`SketchClient.checkpoint`."""
        return await self._request("checkpoint")

    async def close(self) -> None:
        """Close the connection and wait for the transport to drop."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncSketchClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
