"""`SketchClient` / `AsyncSketchClient`: the sketch service client library.

Both clients expose the same call surface over the
:mod:`repro.service.protocol` frame format:

``hello`` / ``ping`` / ``stats``
    identity, liveness, and monitoring counters;
``feed(items, deltas)`` / ``feed_chunks(source, window=...)``
    update ingestion -- ``feed_chunks`` pipelines up to ``window``
    unacknowledged batches so the socket, the server's reader, and the
    fleet's scatter all overlap (the network edition of the ingest
    queue);
``estimate(items)`` / ``query(kind=...)``
    batched point estimates (exact int64 or bit-exact float64 arrays)
    and the family's native query (``kind="f2"`` -> ``f2_estimate``);
``snapshot()`` / ``load_snapshot(data)`` / ``checkpoint()``
    wire-format state movement -- the same fingerprint-verified bytes
    the in-process merge protocol trusts.

The sync client is a plain blocking socket (no event loop), which makes
it safe to drive from anywhere -- benchmark harnesses, shell tools,
worker threads.  The async client mirrors it coroutine-for-method for
callers already inside a loop (the coordinator uses it).

Server-side failures raise the *same* exceptions a local engine would
(:class:`~repro.distributed.codec.FingerprintMismatch`,
:class:`~repro.distributed.codec.SnapshotError`) or
:class:`~repro.service.protocol.ServiceError` carrying the remote
exception class; framing corruption raises
:class:`~repro.service.protocol.ProtocolError` and invalidates the
connection.

Fault tolerance
---------------
``connect`` rides out restarts through a
:class:`~repro.service.retry.RetryPolicy` (capped exponential backoff
under a total deadline; the bare ``retry_interval=`` kwarg is a
deprecated fixed-interval shim).  ``feed_chunks(..., retry=policy)``
goes further: every chunk carries this client's opaque ``client_id``
and a contiguous ``seq`` number, so after a dropped connection, a
truncated frame, or a ``busy`` shed the client reconnects and
retransmits everything unacknowledged -- the server's contiguous-seq
dedup acks duplicates without re-applying them, making the whole replay
**exactly-once** (the chaos tests pin byte-identical final state
against a serial engine).  Only idempotent-by-construction traffic
auto-retries: connects, and sequenced feeds.

Hedged reads
------------
``enable_hedging(host, port)`` arms the tail-latency defense for
*replicated* deployments (two servers fed the same stream, verified by
construction fingerprint): an ``estimate`` that has not answered within
``hedge_delay`` seconds is fired again at the backup server and the
first full reply wins.  The loser's reply is drained off its connection
later (never interleaved with a live request), so the one-in-flight
protocol invariant holds on both sockets.  The delay defaults to the
p99 of the ``repro_phase_seconds`` estimate-latency series when
observability is on (:func:`hedge_delay_from_metrics`); outcomes land
in ``repro_hedged_reads_total{outcome=}`` -- ``fast`` (no hedge fired),
``primary`` / ``backup`` (hedge fired, who won), ``failover`` (primary
connection died, backup answered).
"""

from __future__ import annotations

import asyncio
import select
import socket
import time
import uuid
import warnings
from collections import deque
from typing import Optional

import numpy as np

from repro.distributed.codec import FingerprintMismatch
from repro.obs import (
    HEDGED_READS_METRIC,
    PHASE_SECONDS_METRIC,
    get_registry as _get_obs_registry,
    histogram_quantile,
    phase_histogram,
)
from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    make_request,
    raise_for_reply,
    read_message,
    recv_message,
    send_message,
    unpack_array,
    write_message,
    ProtocolError,
    SequenceGap,
    ServerBusy,
)
from repro.service.retry import RetryPolicy, count_retry

__all__ = [
    "SketchClient",
    "AsyncSketchClient",
    "DEFAULT_HEDGE_DELAY",
    "hedge_delay_from_metrics",
]

#: Default pipelining window for feed_chunks (unacknowledged batches).
DEFAULT_WINDOW = 8

#: Fallback hedge delay (seconds) when no latency histogram is recorded
#: (fresh process, or the ``REPRO_OBS=0`` kill switch).
DEFAULT_HEDGE_DELAY = 0.05

#: Phase label client-side estimate latency records under.
ESTIMATE_PHASE = "client.estimate"

_obs_registry = _get_obs_registry()
_obs_hedged = _obs_registry.counter(
    HEDGED_READS_METRIC,
    "Hedged estimate outcomes (fast/primary/backup/failover)",
)


def _observe_estimate(seconds: float) -> None:
    if _obs_registry.enabled:
        phase_histogram(_obs_registry).observe(seconds, phase=ESTIMATE_PHASE)


def hedge_delay_from_metrics(
    snapshot: Optional[dict] = None,
    *,
    quantile: float = 0.99,
    default: float = DEFAULT_HEDGE_DELAY,
) -> float:
    """The adaptive hedge delay: p99 of observed request latency.

    Reads the ``repro_phase_seconds`` histogram -- the client-side
    ``client.estimate`` series first (recorded by every un-hedged or
    fast-path estimate), the server-side ``service.request`` series as
    a fallback (available when client and server share a process, or
    when a scraped fleet snapshot is passed in).  Returns ``default``
    when neither series exists, including under ``REPRO_OBS=0``.
    """
    if snapshot is None:
        if not _obs_registry.enabled:
            return default
        snapshot = _obs_registry.snapshot()
    for phase in (ESTIMATE_PHASE, "service.request"):
        value = histogram_quantile(
            snapshot, PHASE_SECONDS_METRIC, quantile, phase=phase
        )
        if value is not None:
            return float(value)
    return default


def _as_feed_arrays(items, deltas) -> tuple[np.ndarray, np.ndarray]:
    items = np.ascontiguousarray(items, dtype=np.int64)
    deltas = np.ascontiguousarray(deltas, dtype=np.int64)
    if items.shape != deltas.shape or items.ndim != 1:
        raise ValueError(
            "feed needs aligned one-dimensional items/deltas arrays, got "
            f"shapes {items.shape} and {deltas.shape}"
        )
    return items, deltas


def _resolve_retry(
    retry: Optional[RetryPolicy],
    retries: int,
    retry_interval: Optional[float],
    *,
    stacklevel: int = 3,
) -> RetryPolicy:
    """Resolve ``connect``'s retry surface onto one :class:`RetryPolicy`.

    ``retry_interval=`` was the fixed-interval spelling; passing it now
    warns and maps onto :meth:`RetryPolicy.fixed` (same schedule,
    byte-compatible behavior).  An explicit ``retry=`` policy always
    wins, silently, so migrated callers never warn.  Bare ``retries=N``
    stays supported and now gets the default capped-exponential shape.
    """
    if retry_interval is not None and retry is None:
        warnings.warn(
            "the retry_interval= kwarg is deprecated; pass "
            "retry=RetryPolicy(...) (or RetryPolicy.fixed(interval, "
            "retries) for the old fixed-interval schedule) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return RetryPolicy.fixed(retry_interval, retries)
    if retry is not None:
        return retry
    return RetryPolicy(max_attempts=retries + 1)


class SketchClient:
    """Blocking-socket client for one :class:`SketchServer`.

    Usage::

        with SketchClient.connect("127.0.0.1", port) as client:
            client.feed(items, deltas)
            counts = client.estimate(probe_items)
    """

    def __init__(
        self,
        sock: socket.socket,
        max_frame: int = DEFAULT_MAX_FRAME,
        *,
        client_id: Optional[str] = None,
    ) -> None:
        self._sock = sock
        self._max_frame = max_frame
        self._request_seq = 0
        self.server_info: Optional[dict] = None
        #: Opaque identity for sequenced (exactly-once) feeds; stable
        #: across reconnects of this client object.
        self.client_id = client_id or uuid.uuid4().hex
        self._feed_seq = 0
        #: Retries this client consumed (connects + feed replays).
        self.retries = 0
        self._address: Optional[tuple[str, int]] = None
        self._policy: Optional[RetryPolicy] = None
        self._hello = False
        #: Abandoned hedged-request ids whose replies are still due on
        #: this connection; ``_drain`` discards them on arrival.
        self._stale_ids: set[int] = set()
        self._hedge: Optional[dict] = None
        #: Functional hedged-read accounting (works under ``REPRO_OBS=0``).
        self.hedge_outcomes: dict[str, int] = {}

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_interval: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        hello: bool = True,
        client_id: Optional[str] = None,
    ) -> "SketchClient":
        """Connect under a retry policy and perform the ``hello`` handshake.

        ``retry=`` takes a full :class:`RetryPolicy` (backoff, deadline,
        per-op timeout); bare ``retries=N`` gets the default
        capped-exponential shape.  ``retry_interval=`` is deprecated --
        it warns and maps onto :meth:`RetryPolicy.fixed`.  The handshake
        pins the server's sketch class and construction fingerprint in
        ``client.server_info``.
        """
        policy = _resolve_retry(retry, retries, retry_interval)
        client = cls(
            cls._open_socket(host, port, policy),
            max_frame=max_frame,
            client_id=client_id,
        )
        client._address = (host, port)
        client._policy = policy
        client._hello = hello
        if hello:
            client.server_info = client.hello()
        return client

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    def _open_socket(
        host: str, port: int, policy: RetryPolicy
    ) -> socket.socket:
        schedule = policy.start()
        while True:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=policy.op_timeout
                )
                break
            except OSError:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                count_retry("connect")
                time.sleep(delay)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(policy.op_timeout)
        return sock

    def _reopen(self) -> None:
        """One fresh connection attempt to the remembered address.

        Keeps this client's identity (``client_id``, feed ``seq``
        counter) so the server's dedup recognizes replays.  A single
        attempt by design: the resilient feed loop owns backoff, so a
        refused connect surfaces as ``OSError`` for it to schedule.
        """
        if self._address is None:
            raise RuntimeError(
                "cannot reconnect: this client was not built via connect()"
            )
        try:
            self._sock.close()
        except OSError:
            pass
        policy = self._policy or RetryPolicy(max_attempts=1)
        sock = socket.create_connection(
            self._address, timeout=policy.op_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(policy.op_timeout)
        self._sock = sock
        self._stale_ids.clear()
        if self._hello:
            self.server_info = self.hello()

    def _send(self, op: str, **fields) -> int:
        self._request_seq += 1
        send_message(self._sock, make_request(op, self._request_seq, **fields))
        return self._request_seq

    def _drain(self, request_id: int):
        while True:
            message = recv_message(self._sock, self._max_frame)
            reply_id = message.get("id")
            if reply_id in self._stale_ids:
                # A hedged request this client abandoned: its reply
                # arrives here, out of band -- discard and keep reading.
                self._stale_ids.discard(reply_id)
                continue
            return raise_for_reply(message, request_id)

    def _request(self, op: str, **fields):
        return self._drain(self._send(op, **fields))

    # -- the call surface ---------------------------------------------------

    def hello(self) -> dict:
        """Server identity: sketch class, fingerprint, fleet shape."""
        return self._request("hello")

    def ping(self) -> dict:
        """Liveness probe; returns ``{"pong": True, "position": ...}``."""
        return self._request("ping")

    def stats(self) -> dict:
        """The server's operational monitoring counters."""
        return self._request("stats")

    def metrics(self) -> dict:
        """The server's fleet-merged telemetry.

        Returns ``{"server", "snapshot", "exposition", "content_type"}``
        -- the obs-registry snapshot (mergeable with other servers' via
        :func:`repro.obs.merge_snapshots`) plus its Prometheus text
        rendering.
        """
        return self._request("metrics")

    def alerts(self) -> dict:
        """The server's current alert states.

        Returns ``{"server", "alerts", "firing", "evaluated_at"}``; the
        rule list is empty on servers without an attached
        :class:`~repro.obs.alerts.AlertEngine`.  Each call runs one
        evaluation pass on the server, so polling cadence is evaluation
        cadence.
        """
        return self._request("alerts")

    def feed(self, items, deltas, *, seq: Optional[int] = None) -> dict:
        """Send one update batch; returns ``{"count", "position"}``.

        With ``seq=`` the batch is sequenced under this client's
        identity (the exactly-once dedup channel ``feed_chunks`` uses);
        resending the *same* seq after a lost acknowledgement is safe.
        """
        items, deltas = _as_feed_arrays(items, deltas)
        fields = {"items": items, "deltas": deltas}
        if seq is not None:
            fields.update(client=self.client_id, seq=int(seq))
        return self._request("feed", **fields)

    def feed_chunks(
        self,
        source,
        window: int = DEFAULT_WINDOW,
        retry: Optional[RetryPolicy] = None,
    ) -> dict:
        """Stream ``(items, deltas)`` chunks with pipelined acknowledgements.

        Keeps up to ``window`` batches in flight: the socket send of
        chunk ``t+1`` overlaps the server's scatter of chunk ``t``.
        Returns ``{"count": total updates, "position": last ack'd}``.

        With ``retry=`` a policy, every chunk is sequenced (``client`` +
        ``seq`` fields) and the stream survives faults: a dropped or
        corrupted connection triggers reconnect-and-retransmit of every
        unacknowledged chunk, and a ``busy``/gap rejection backs off and
        resends -- the server's contiguous-seq dedup makes all of it
        exactly-once.  Without it, behavior is the original fail-fast
        pipeline.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if retry is not None:
            return self._feed_chunks_resilient(source, window, retry)
        pending: deque[int] = deque()
        total = 0
        position = None
        for items, deltas in source:
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            pending.append(self._send("feed", items=items, deltas=deltas))
            if len(pending) >= window:
                position = self._drain(pending.popleft())["position"]
        while pending:
            position = self._drain(pending.popleft())["position"]
        return {"count": total, "position": position}

    def _feed_chunks_resilient(
        self, source, window: int, policy: RetryPolicy
    ) -> dict:
        """Sequenced feed pipeline with reconnect-and-replay.

        Invariants that make this exactly-once:

        * every chunk gets the next contiguous ``seq`` *before* its
          first send and keeps it across resends;
        * the server rejects out-of-order seqs (:class:`SequenceGap`)
          and sheds only *before* the engine (:class:`ServerBusy`), so
          the unacknowledged set is always a contiguous suffix;
        * on any transport fault we retransmit that whole suffix in seq
          order -- acked duplicates return without re-applying.

        One :class:`RetrySchedule` spans consecutive faults and resets
        on any successful acknowledgement, so the deadline bounds each
        outage rather than the whole (arbitrarily long) stream.
        """
        if self._address is None:
            raise RuntimeError(
                "feed_chunks(retry=...) needs a client built via connect()"
            )
        pending: deque[list] = deque()  # [request_id, seq, items, deltas]
        failed: list[list] = []  # rejected (busy/gap), awaiting resend
        state = {"schedule": None}
        total = 0
        position = None

        def backoff(kind: str, exc: BaseException) -> None:
            if state["schedule"] is None:
                state["schedule"] = policy.start()
            delay = state["schedule"].next_delay()
            if delay is None:
                raise exc
            self.retries += 1
            count_retry(kind)
            time.sleep(delay)

        def send_entry(entry: list) -> None:
            entry[0] = self._send(
                "feed",
                items=entry[2],
                deltas=entry[3],
                client=self.client_id,
                seq=entry[1],
            )

        def requeue_all() -> None:
            entries = sorted([*failed, *pending], key=lambda entry: entry[1])
            failed.clear()
            pending.clear()
            pending.extend(entries)

        def reopen_and_replay(exc: BaseException) -> None:
            requeue_all()
            while True:
                backoff("reconnect", exc)
                try:
                    self._reopen()
                    for entry in pending:
                        send_entry(entry)
                except (OSError, ProtocolError) as retry_exc:
                    exc = retry_exc
                    continue
                return

        def drain_step() -> None:
            nonlocal position
            if failed and not pending:
                # Whole suffix was rejected (busy or gap): back off,
                # then resend it in seq order on the live connection.
                backoff("feed-replay", failed[0][4])
                requeue_all()
                for entry in pending:
                    send_entry(entry)
                return
            entry = pending[0]
            try:
                reply = self._drain(entry[0])
            except (ServerBusy, SequenceGap) as exc:
                pending.popleft()
                failed.append(entry[:4] + [exc])
                return
            pending.popleft()
            if not reply.get("duplicate"):
                position = reply["position"]
            state["schedule"] = None  # progress: fresh budget per outage

        def pump(limit: int) -> None:
            while len(pending) + len(failed) > limit or (
                failed and not pending
            ):
                try:
                    drain_step()
                except (OSError, ProtocolError) as exc:
                    reopen_and_replay(exc)

        for items, deltas in source:
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            self._feed_seq += 1
            entry = [None, self._feed_seq, items, deltas]
            pending.append(entry)
            try:
                send_entry(entry)
            except (OSError, ProtocolError) as exc:
                reopen_and_replay(exc)
            pump(window - 1)
        pump(0)
        return {"count": total, "position": position}

    def estimate(self, items) -> np.ndarray:
        """Batched point estimates from the server's merged state.

        Idempotent by construction, so this is the one call
        ``enable_hedging`` races against a backup replica.
        """
        items = np.ascontiguousarray(items, dtype=np.int64)
        if self._hedge is not None:
            return unpack_array(self._hedged_request("estimate", items=items))
        started = time.perf_counter()
        reply = self._request("estimate", items=items)
        _observe_estimate(time.perf_counter() - started)
        return unpack_array(reply)

    # -- hedged reads -------------------------------------------------------

    def enable_hedging(
        self, host: str, port: int, *, delay: Optional[float] = None
    ) -> None:
        """Arm hedged estimates against a backup replica at ``host:port``.

        The backup connection opens lazily on the first hedge and its
        construction fingerprint must match the primary's.  ``delay`` is
        the seconds to wait on the primary before firing the hedge;
        ``None`` (default) re-derives the p99 from the latency histogram
        on every hedged call (:func:`hedge_delay_from_metrics`).
        """
        self._hedge = {"address": (host, int(port)), "delay": delay, "client": None}

    def _count_hedge(self, outcome: str) -> None:
        self.hedge_outcomes[outcome] = self.hedge_outcomes.get(outcome, 0) + 1
        if _obs_registry.enabled:
            _obs_hedged.add(1, outcome=outcome)

    def _hedge_backup(self) -> "SketchClient":
        hedge = self._hedge
        backup = hedge["client"]
        if backup is None or backup._sock.fileno() < 0:
            host, port = hedge["address"]
            backup = SketchClient.connect(
                host, port, retry=self._policy or RetryPolicy(max_attempts=1)
            )
            mine = (self.server_info or {}).get("fingerprint")
            theirs = (backup.server_info or {}).get("fingerprint")
            if mine is not None and theirs is not None and mine != theirs:
                backup.close()
                raise FingerprintMismatch(
                    "hedge backup's construction fingerprint disagrees with "
                    "the primary's; hedged reads need identically "
                    "constructed replicas"
                )
            hedge["client"] = backup
        return backup

    def _hedged_request(self, op: str, **fields):
        hedge = self._hedge
        started = time.perf_counter()
        request_id = self._send(op, **fields)
        delay = hedge["delay"]
        if delay is None:
            delay = hedge_delay_from_metrics()
        primary_exc: Optional[BaseException] = None
        readable, _, _ = select.select([self._sock], [], [], max(delay, 0.0))
        if readable:
            try:
                reply = self._drain(request_id)
            except (OSError, ProtocolError) as exc:
                # Primary died inside the hedge window: hedge anyway --
                # the backup turns a would-be error into a failover.
                primary_exc = exc
            else:
                _observe_estimate(time.perf_counter() - started)
                self._count_hedge("fast")
                return reply
        try:
            backup = self._hedge_backup()
            backup_id = backup._send(op, **fields)
        except FingerprintMismatch:
            raise
        except (OSError, ProtocolError):
            # Backup unusable: fall back to waiting out the primary.
            hedge["client"] = None
            if primary_exc is not None:
                raise primary_exc
            reply = self._drain(request_id)
            _observe_estimate(time.perf_counter() - started)
            self._count_hedge("fast")
            return reply
        timeout = self._policy.op_timeout if self._policy else None
        backup_alive = True
        while True:
            socks = []
            if primary_exc is None:
                socks.append(self._sock)
            if backup_alive:
                socks.append(backup._sock)
            if not socks:
                raise primary_exc
            readable, _, _ = select.select(socks, [], [], timeout)
            if not readable:
                raise OSError("hedged read timed out on both servers")
            if primary_exc is None and self._sock in readable:
                try:
                    reply = self._drain(request_id)
                except (OSError, ProtocolError) as exc:
                    primary_exc = exc
                    continue
                except Exception:
                    # The primary answered with an authoritative error;
                    # the backup's eventual reply is abandoned.
                    if backup_alive:
                        backup._stale_ids.add(backup_id)
                    raise
                if backup_alive:
                    backup._stale_ids.add(backup_id)
                _observe_estimate(time.perf_counter() - started)
                self._count_hedge("primary")
                return reply
            if backup_alive and backup._sock in readable:
                try:
                    reply = backup._drain(backup_id)
                except (OSError, ProtocolError) as exc:
                    backup.close()
                    hedge["client"] = None
                    backup_alive = False
                    if primary_exc is not None:
                        raise exc from primary_exc
                    continue
                except Exception:
                    if primary_exc is None:
                        self._stale_ids.add(request_id)
                    raise
                if primary_exc is None:
                    self._stale_ids.add(request_id)
                    outcome = "backup"
                else:
                    outcome = "failover"
                _observe_estimate(time.perf_counter() - started)
                self._count_hedge(outcome)
                return reply

    def query(self, kind: Optional[str] = None):
        """The sketch family's native query (``kind="f2"`` for F2)."""
        return self._request("query", kind=kind)

    def f2_estimate(self) -> float:
        """Second-moment estimate from the server's merged state."""
        return self.query(kind="f2")

    def snapshot(self) -> bytes:
        """Wire-format snapshot of the server's merged state."""
        return self._request("snapshot")

    def load_snapshot(
        self,
        data: bytes,
        position: Optional[int] = None,
        *,
        merge: bool = False,
    ) -> dict:
        """Restore a snapshot into the server's fleet (recovery).

        ``merge=True`` folds the snapshot into the server's live state
        instead of replacing it -- the shard-migration handoff.
        """
        fields = {"snapshot": bytes(data)}
        if position is not None:
            fields["position"] = int(position)
        if merge:
            fields["merge"] = True
        return self._request("load_snapshot", **fields)

    def checkpoint(self) -> dict:
        """Force a server-side checkpoint write now."""
        return self._request("checkpoint")

    def close(self) -> None:
        """Close the socket and any hedge backup (idempotent)."""
        if self._hedge is not None and self._hedge.get("client") is not None:
            self._hedge["client"].close()
            self._hedge["client"] = None
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SketchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncSketchClient:
    """Asyncio counterpart of :class:`SketchClient` (same surface)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = DEFAULT_MAX_FRAME,
        *,
        client_id: Optional[str] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._request_seq = 0
        self.server_info: Optional[dict] = None
        self.client_id = client_id or uuid.uuid4().hex
        self._feed_seq = 0
        self.retries = 0
        self._address: Optional[tuple[str, int]] = None
        self._policy: Optional[RetryPolicy] = None
        self._hello = False
        #: A hedged loser's drain task still reading this connection;
        #: awaited (and its reply discarded) before the next send.
        self._pending_drain: Optional[asyncio.Task] = None
        self._hedge: Optional[dict] = None
        self.hedge_outcomes: dict[str, int] = {}

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_interval: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        hello: bool = True,
        client_id: Optional[str] = None,
    ) -> "AsyncSketchClient":
        """See :meth:`SketchClient.connect` (same retry surface)."""
        policy = _resolve_retry(retry, retries, retry_interval)
        schedule = policy.start()
        while True:
            try:
                reader, writer = await cls._open_stream(host, port, policy)
                break
            except OSError:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                count_retry("connect")
                await asyncio.sleep(delay)
        client = cls(reader, writer, max_frame=max_frame, client_id=client_id)
        client._address = (host, port)
        client._policy = policy
        client._hello = hello
        if hello:
            client.server_info = await client.hello()
        return client

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    async def _open_stream(host: str, port: int, policy: RetryPolicy):
        opening = asyncio.open_connection(host, port)
        if policy.op_timeout is not None:
            try:
                return await asyncio.wait_for(opening, policy.op_timeout)
            except asyncio.TimeoutError:
                raise OSError("connect timed out") from None
        return await opening

    async def _reopen(self) -> None:
        """See :meth:`SketchClient._reopen` (one attempt, same identity)."""
        if self._address is None:
            raise RuntimeError(
                "cannot reconnect: this client was not built via connect()"
            )
        await self._cancel_pending()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        policy = self._policy or RetryPolicy(max_attempts=1)
        self._reader, self._writer = await self._open_stream(
            self._address[0], self._address[1], policy
        )
        if self._hello:
            self.server_info = await self.hello()

    async def _settle(self) -> None:
        """Wait out an abandoned hedge drain before touching the stream.

        The loser of a hedged race keeps a task reading its own reply
        off this connection; letting a new request interleave with it
        would desynchronize the one-in-flight protocol.  The task's
        result (or failure) is discarded -- the race already answered.
        """
        task = self._pending_drain
        if task is None:
            return
        self._pending_drain = None
        try:
            await task
        except Exception:
            pass

    async def _cancel_pending(self) -> None:
        """Drop an abandoned drain outright (the connection is going away)."""
        task = self._pending_drain
        if task is None:
            return
        self._pending_drain = None
        task.cancel()
        try:
            await task
        except BaseException:
            pass

    async def _send(self, op: str, **fields) -> int:
        await self._settle()
        self._request_seq += 1
        await write_message(
            self._writer, make_request(op, self._request_seq, **fields)
        )
        return self._request_seq

    async def _drain(self, request_id: int):
        message = await read_message(self._reader, self._max_frame)
        if message is None:
            raise ProtocolError("connection closed while awaiting a reply")
        return raise_for_reply(message, request_id)

    async def _drain_timed(self, request_id: int):
        timeout = self._policy.op_timeout if self._policy else None
        if timeout is None:
            return await self._drain(request_id)
        try:
            return await asyncio.wait_for(self._drain(request_id), timeout)
        except asyncio.TimeoutError:
            raise OSError("reply timed out") from None

    async def _request(self, op: str, **fields):
        return await self._drain(await self._send(op, **fields))

    # -- the call surface ---------------------------------------------------

    async def hello(self) -> dict:
        """See :meth:`SketchClient.hello`."""
        return await self._request("hello")

    async def ping(self) -> dict:
        """See :meth:`SketchClient.ping`."""
        return await self._request("ping")

    async def stats(self) -> dict:
        """See :meth:`SketchClient.stats`."""
        return await self._request("stats")

    async def metrics(self) -> dict:
        """See :meth:`SketchClient.metrics`."""
        return await self._request("metrics")

    async def alerts(self) -> dict:
        """See :meth:`SketchClient.alerts`."""
        return await self._request("alerts")

    async def feed(self, items, deltas, *, seq: Optional[int] = None) -> dict:
        """See :meth:`SketchClient.feed` (``seq=`` sequences the batch)."""
        items, deltas = _as_feed_arrays(items, deltas)
        fields = {"items": items, "deltas": deltas}
        if seq is not None:
            fields.update(client=self.client_id, seq=int(seq))
        return await self._request("feed", **fields)

    async def feed_chunks(
        self,
        source,
        window: int = DEFAULT_WINDOW,
        retry: Optional[RetryPolicy] = None,
    ) -> dict:
        """Pipelined chunk streaming (see :meth:`SketchClient.feed_chunks`).

        ``source`` may be a sync or async iterable of chunk pairs.  With
        ``retry=`` a policy, chunks are sequenced and the stream
        reconnects and retransmits exactly-once, as in the sync client.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if retry is not None:
            return await self._feed_chunks_resilient(source, window, retry)
        pending: deque[int] = deque()
        total = 0
        position = None

        async def _push(items, deltas) -> None:
            nonlocal position, total
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            pending.append(await self._send("feed", items=items, deltas=deltas))
            if len(pending) >= window:
                position = (await self._drain(pending.popleft()))["position"]

        if hasattr(source, "__aiter__"):
            async for items, deltas in source:
                await _push(items, deltas)
        else:
            for items, deltas in source:
                await _push(items, deltas)
        while pending:
            position = (await self._drain(pending.popleft()))["position"]
        return {"count": total, "position": position}

    async def _feed_chunks_resilient(
        self, source, window: int, policy: RetryPolicy
    ) -> dict:
        """Async twin of :meth:`SketchClient._feed_chunks_resilient`."""
        if self._address is None:
            raise RuntimeError(
                "feed_chunks(retry=...) needs a client built via connect()"
            )
        pending: deque[list] = deque()
        failed: list[list] = []
        state = {"schedule": None}
        total = 0
        position = None

        async def backoff(kind: str, exc: BaseException) -> None:
            if state["schedule"] is None:
                state["schedule"] = policy.start()
            delay = state["schedule"].next_delay()
            if delay is None:
                raise exc
            self.retries += 1
            count_retry(kind)
            await asyncio.sleep(delay)

        async def send_entry(entry: list) -> None:
            entry[0] = await self._send(
                "feed",
                items=entry[2],
                deltas=entry[3],
                client=self.client_id,
                seq=entry[1],
            )

        def requeue_all() -> None:
            entries = sorted([*failed, *pending], key=lambda entry: entry[1])
            failed.clear()
            pending.clear()
            pending.extend(entries)

        async def reopen_and_replay(exc: BaseException) -> None:
            requeue_all()
            while True:
                await backoff("reconnect", exc)
                try:
                    await self._reopen()
                    for entry in pending:
                        await send_entry(entry)
                except (OSError, ProtocolError) as retry_exc:
                    exc = retry_exc
                    continue
                return

        async def drain_step() -> None:
            nonlocal position
            if failed and not pending:
                await backoff("feed-replay", failed[0][4])
                requeue_all()
                for entry in pending:
                    await send_entry(entry)
                return
            entry = pending[0]
            try:
                reply = await self._drain_timed(entry[0])
            except (ServerBusy, SequenceGap) as exc:
                pending.popleft()
                failed.append(entry[:4] + [exc])
                return
            pending.popleft()
            if not reply.get("duplicate"):
                position = reply["position"]
            state["schedule"] = None

        async def pump(limit: int) -> None:
            while len(pending) + len(failed) > limit or (
                failed and not pending
            ):
                try:
                    await drain_step()
                except (OSError, ProtocolError) as exc:
                    await reopen_and_replay(exc)

        async def push(items, deltas) -> None:
            nonlocal total
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            self._feed_seq += 1
            entry = [None, self._feed_seq, items, deltas]
            pending.append(entry)
            try:
                await send_entry(entry)
            except (OSError, ProtocolError) as exc:
                await reopen_and_replay(exc)
            await pump(window - 1)

        if hasattr(source, "__aiter__"):
            async for items, deltas in source:
                await push(items, deltas)
        else:
            for items, deltas in source:
                await push(items, deltas)
        await pump(0)
        return {"count": total, "position": position}

    async def estimate(self, items) -> np.ndarray:
        """See :meth:`SketchClient.estimate` (hedged when armed)."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        if self._hedge is not None:
            return unpack_array(
                await self._hedged_request("estimate", items=items)
            )
        started = time.perf_counter()
        reply = await self._request("estimate", items=items)
        _observe_estimate(time.perf_counter() - started)
        return unpack_array(reply)

    # -- hedged reads -------------------------------------------------------

    def enable_hedging(
        self, host: str, port: int, *, delay: Optional[float] = None
    ) -> None:
        """See :meth:`SketchClient.enable_hedging`."""
        self._hedge = {"address": (host, int(port)), "delay": delay, "client": None}

    def _count_hedge(self, outcome: str) -> None:
        self.hedge_outcomes[outcome] = self.hedge_outcomes.get(outcome, 0) + 1
        if _obs_registry.enabled:
            _obs_hedged.add(1, outcome=outcome)

    async def _hedge_backup(self) -> "AsyncSketchClient":
        hedge = self._hedge
        backup = hedge["client"]
        if backup is None:
            host, port = hedge["address"]
            backup = await AsyncSketchClient.connect(
                host, port, retry=self._policy or RetryPolicy(max_attempts=1)
            )
            mine = (self.server_info or {}).get("fingerprint")
            theirs = (backup.server_info or {}).get("fingerprint")
            if mine is not None and theirs is not None and mine != theirs:
                await backup.close()
                raise FingerprintMismatch(
                    "hedge backup's construction fingerprint disagrees with "
                    "the primary's; hedged reads need identically "
                    "constructed replicas"
                )
            hedge["client"] = backup
        return backup

    @staticmethod
    def _abandon(owner: "AsyncSketchClient", task: asyncio.Task) -> None:
        """Park a losing drain on its connection (settled pre-next-send)."""
        if task.done():
            if not task.cancelled():
                task.exception()  # retrieve, so failures never warn
        else:
            owner._pending_drain = task

    async def _hedged_request(self, op: str, **fields):
        hedge = self._hedge
        started = time.perf_counter()
        request_id = await self._send(op, **fields)
        delay = hedge["delay"]
        if delay is None:
            delay = hedge_delay_from_metrics()
        primary = asyncio.ensure_future(self._drain_timed(request_id))
        done, _ = await asyncio.wait({primary}, timeout=max(delay, 0.0))
        primary_exc: Optional[BaseException] = None
        if done:
            try:
                reply = primary.result()
            except (OSError, ProtocolError) as exc:
                # Primary died inside the hedge window: hedge anyway --
                # the backup turns a would-be error into a failover.
                primary_exc = exc
            else:
                # Server-side (application) errors raised faithfully above.
                _observe_estimate(time.perf_counter() - started)
                self._count_hedge("fast")
                return reply
        try:
            backup = await self._hedge_backup()
            backup_id = await backup._send(op, **fields)
        except FingerprintMismatch:
            self._abandon(self, primary)
            raise
        except (OSError, ProtocolError):
            hedge["client"] = None
            if primary_exc is not None:
                raise primary_exc
            reply = await primary
            _observe_estimate(time.perf_counter() - started)
            self._count_hedge("fast")
            return reply
        secondary = asyncio.ensure_future(backup._drain_timed(backup_id))
        if primary_exc is not None:
            reply = await secondary  # backup's own failure propagates
            _observe_estimate(time.perf_counter() - started)
            self._count_hedge("failover")
            return reply
        done, _ = await asyncio.wait(
            {primary, secondary}, return_when=asyncio.FIRST_COMPLETED
        )
        if primary in done:
            try:
                reply = primary.result()
            except (OSError, ProtocolError):
                # Primary connection died mid-read: the backup is now
                # the only answer.  Its own failure propagates.
                reply = await secondary
                _observe_estimate(time.perf_counter() - started)
                self._count_hedge("failover")
                return reply
            except Exception:
                self._abandon(backup, secondary)
                raise
            self._abandon(backup, secondary)
            _observe_estimate(time.perf_counter() - started)
            self._count_hedge("primary")
            return reply
        try:
            reply = secondary.result()
        except (OSError, ProtocolError):
            hedge["client"] = None
            reply = await primary  # wait out the primary alone
            _observe_estimate(time.perf_counter() - started)
            self._count_hedge("primary")
            return reply
        except Exception:
            self._abandon(self, primary)
            raise
        self._abandon(self, primary)
        _observe_estimate(time.perf_counter() - started)
        self._count_hedge("backup")
        return reply

    async def query(self, kind: Optional[str] = None):
        """See :meth:`SketchClient.query`."""
        return await self._request("query", kind=kind)

    async def f2_estimate(self) -> float:
        """See :meth:`SketchClient.f2_estimate`."""
        return await self.query(kind="f2")

    async def snapshot(self) -> bytes:
        """See :meth:`SketchClient.snapshot`."""
        return await self._request("snapshot")

    async def load_snapshot(
        self,
        data: bytes,
        position: Optional[int] = None,
        *,
        merge: bool = False,
    ) -> dict:
        """See :meth:`SketchClient.load_snapshot` (``merge=True`` folds in)."""
        fields = {"snapshot": bytes(data)}
        if position is not None:
            fields["position"] = int(position)
        if merge:
            fields["merge"] = True
        return await self._request("load_snapshot", **fields)

    async def checkpoint(self) -> dict:
        """See :meth:`SketchClient.checkpoint`."""
        return await self._request("checkpoint")

    async def close(self) -> None:
        """Close the connection and wait for the transport to drop."""
        await self._cancel_pending()
        if self._hedge is not None and self._hedge.get("client") is not None:
            backup = self._hedge["client"]
            self._hedge["client"] = None
            await backup.close()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncSketchClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
