"""`SketchClient` / `AsyncSketchClient`: the sketch service client library.

Both clients expose the same call surface over the
:mod:`repro.service.protocol` frame format:

``hello`` / ``ping`` / ``stats``
    identity, liveness, and monitoring counters;
``feed(items, deltas)`` / ``feed_chunks(source, window=...)``
    update ingestion -- ``feed_chunks`` pipelines up to ``window``
    unacknowledged batches so the socket, the server's reader, and the
    fleet's scatter all overlap (the network edition of the ingest
    queue);
``estimate(items)`` / ``query(kind=...)``
    batched point estimates (exact int64 or bit-exact float64 arrays)
    and the family's native query (``kind="f2"`` -> ``f2_estimate``);
``snapshot()`` / ``load_snapshot(data)`` / ``checkpoint()``
    wire-format state movement -- the same fingerprint-verified bytes
    the in-process merge protocol trusts.

The sync client is a plain blocking socket (no event loop), which makes
it safe to drive from anywhere -- benchmark harnesses, shell tools,
worker threads.  The async client mirrors it coroutine-for-method for
callers already inside a loop (the coordinator uses it).

Server-side failures raise the *same* exceptions a local engine would
(:class:`~repro.distributed.codec.FingerprintMismatch`,
:class:`~repro.distributed.codec.SnapshotError`) or
:class:`~repro.service.protocol.ServiceError` carrying the remote
exception class; framing corruption raises
:class:`~repro.service.protocol.ProtocolError` and invalidates the
connection.

Fault tolerance
---------------
``connect`` rides out restarts through a
:class:`~repro.service.retry.RetryPolicy` (capped exponential backoff
under a total deadline; the bare ``retry_interval=`` kwarg is a
deprecated fixed-interval shim).  ``feed_chunks(..., retry=policy)``
goes further: every chunk carries this client's opaque ``client_id``
and a contiguous ``seq`` number, so after a dropped connection, a
truncated frame, or a ``busy`` shed the client reconnects and
retransmits everything unacknowledged -- the server's contiguous-seq
dedup acks duplicates without re-applying them, making the whole replay
**exactly-once** (the chaos tests pin byte-identical final state
against a serial engine).  Only idempotent-by-construction traffic
auto-retries: connects, and sequenced feeds.
"""

from __future__ import annotations

import asyncio
import socket
import time
import uuid
import warnings
from collections import deque
from typing import Optional

import numpy as np

from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    make_request,
    raise_for_reply,
    read_message,
    recv_message,
    send_message,
    unpack_array,
    write_message,
    ProtocolError,
    SequenceGap,
    ServerBusy,
)
from repro.service.retry import RetryPolicy, count_retry

__all__ = ["SketchClient", "AsyncSketchClient"]

#: Default pipelining window for feed_chunks (unacknowledged batches).
DEFAULT_WINDOW = 8


def _as_feed_arrays(items, deltas) -> tuple[np.ndarray, np.ndarray]:
    items = np.ascontiguousarray(items, dtype=np.int64)
    deltas = np.ascontiguousarray(deltas, dtype=np.int64)
    if items.shape != deltas.shape or items.ndim != 1:
        raise ValueError(
            "feed needs aligned one-dimensional items/deltas arrays, got "
            f"shapes {items.shape} and {deltas.shape}"
        )
    return items, deltas


def _resolve_retry(
    retry: Optional[RetryPolicy],
    retries: int,
    retry_interval: Optional[float],
    *,
    stacklevel: int = 3,
) -> RetryPolicy:
    """Resolve ``connect``'s retry surface onto one :class:`RetryPolicy`.

    ``retry_interval=`` was the fixed-interval spelling; passing it now
    warns and maps onto :meth:`RetryPolicy.fixed` (same schedule,
    byte-compatible behavior).  An explicit ``retry=`` policy always
    wins, silently, so migrated callers never warn.  Bare ``retries=N``
    stays supported and now gets the default capped-exponential shape.
    """
    if retry_interval is not None and retry is None:
        warnings.warn(
            "the retry_interval= kwarg is deprecated; pass "
            "retry=RetryPolicy(...) (or RetryPolicy.fixed(interval, "
            "retries) for the old fixed-interval schedule) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return RetryPolicy.fixed(retry_interval, retries)
    if retry is not None:
        return retry
    return RetryPolicy(max_attempts=retries + 1)


class SketchClient:
    """Blocking-socket client for one :class:`SketchServer`.

    Usage::

        with SketchClient.connect("127.0.0.1", port) as client:
            client.feed(items, deltas)
            counts = client.estimate(probe_items)
    """

    def __init__(
        self,
        sock: socket.socket,
        max_frame: int = DEFAULT_MAX_FRAME,
        *,
        client_id: Optional[str] = None,
    ) -> None:
        self._sock = sock
        self._max_frame = max_frame
        self._request_seq = 0
        self.server_info: Optional[dict] = None
        #: Opaque identity for sequenced (exactly-once) feeds; stable
        #: across reconnects of this client object.
        self.client_id = client_id or uuid.uuid4().hex
        self._feed_seq = 0
        #: Retries this client consumed (connects + feed replays).
        self.retries = 0
        self._address: Optional[tuple[str, int]] = None
        self._policy: Optional[RetryPolicy] = None
        self._hello = False

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_interval: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        hello: bool = True,
        client_id: Optional[str] = None,
    ) -> "SketchClient":
        """Connect under a retry policy and perform the ``hello`` handshake.

        ``retry=`` takes a full :class:`RetryPolicy` (backoff, deadline,
        per-op timeout); bare ``retries=N`` gets the default
        capped-exponential shape.  ``retry_interval=`` is deprecated --
        it warns and maps onto :meth:`RetryPolicy.fixed`.  The handshake
        pins the server's sketch class and construction fingerprint in
        ``client.server_info``.
        """
        policy = _resolve_retry(retry, retries, retry_interval)
        client = cls(
            cls._open_socket(host, port, policy),
            max_frame=max_frame,
            client_id=client_id,
        )
        client._address = (host, port)
        client._policy = policy
        client._hello = hello
        if hello:
            client.server_info = client.hello()
        return client

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    def _open_socket(
        host: str, port: int, policy: RetryPolicy
    ) -> socket.socket:
        schedule = policy.start()
        while True:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=policy.op_timeout
                )
                break
            except OSError:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                count_retry("connect")
                time.sleep(delay)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(policy.op_timeout)
        return sock

    def _reopen(self) -> None:
        """One fresh connection attempt to the remembered address.

        Keeps this client's identity (``client_id``, feed ``seq``
        counter) so the server's dedup recognizes replays.  A single
        attempt by design: the resilient feed loop owns backoff, so a
        refused connect surfaces as ``OSError`` for it to schedule.
        """
        if self._address is None:
            raise RuntimeError(
                "cannot reconnect: this client was not built via connect()"
            )
        try:
            self._sock.close()
        except OSError:
            pass
        policy = self._policy or RetryPolicy(max_attempts=1)
        sock = socket.create_connection(
            self._address, timeout=policy.op_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(policy.op_timeout)
        self._sock = sock
        if self._hello:
            self.server_info = self.hello()

    def _send(self, op: str, **fields) -> int:
        self._request_seq += 1
        send_message(self._sock, make_request(op, self._request_seq, **fields))
        return self._request_seq

    def _drain(self, request_id: int):
        return raise_for_reply(
            recv_message(self._sock, self._max_frame), request_id
        )

    def _request(self, op: str, **fields):
        return self._drain(self._send(op, **fields))

    # -- the call surface ---------------------------------------------------

    def hello(self) -> dict:
        """Server identity: sketch class, fingerprint, fleet shape."""
        return self._request("hello")

    def ping(self) -> dict:
        """Liveness probe; returns ``{"pong": True, "position": ...}``."""
        return self._request("ping")

    def stats(self) -> dict:
        """The server's operational monitoring counters."""
        return self._request("stats")

    def metrics(self) -> dict:
        """The server's fleet-merged telemetry.

        Returns ``{"server", "snapshot", "exposition", "content_type"}``
        -- the obs-registry snapshot (mergeable with other servers' via
        :func:`repro.obs.merge_snapshots`) plus its Prometheus text
        rendering.
        """
        return self._request("metrics")

    def alerts(self) -> dict:
        """The server's current alert states.

        Returns ``{"server", "alerts", "firing", "evaluated_at"}``; the
        rule list is empty on servers without an attached
        :class:`~repro.obs.alerts.AlertEngine`.  Each call runs one
        evaluation pass on the server, so polling cadence is evaluation
        cadence.
        """
        return self._request("alerts")

    def feed(self, items, deltas) -> dict:
        """Send one update batch; returns ``{"count", "position"}``."""
        items, deltas = _as_feed_arrays(items, deltas)
        return self._request("feed", items=items, deltas=deltas)

    def feed_chunks(
        self,
        source,
        window: int = DEFAULT_WINDOW,
        retry: Optional[RetryPolicy] = None,
    ) -> dict:
        """Stream ``(items, deltas)`` chunks with pipelined acknowledgements.

        Keeps up to ``window`` batches in flight: the socket send of
        chunk ``t+1`` overlaps the server's scatter of chunk ``t``.
        Returns ``{"count": total updates, "position": last ack'd}``.

        With ``retry=`` a policy, every chunk is sequenced (``client`` +
        ``seq`` fields) and the stream survives faults: a dropped or
        corrupted connection triggers reconnect-and-retransmit of every
        unacknowledged chunk, and a ``busy``/gap rejection backs off and
        resends -- the server's contiguous-seq dedup makes all of it
        exactly-once.  Without it, behavior is the original fail-fast
        pipeline.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if retry is not None:
            return self._feed_chunks_resilient(source, window, retry)
        pending: deque[int] = deque()
        total = 0
        position = None
        for items, deltas in source:
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            pending.append(self._send("feed", items=items, deltas=deltas))
            if len(pending) >= window:
                position = self._drain(pending.popleft())["position"]
        while pending:
            position = self._drain(pending.popleft())["position"]
        return {"count": total, "position": position}

    def _feed_chunks_resilient(
        self, source, window: int, policy: RetryPolicy
    ) -> dict:
        """Sequenced feed pipeline with reconnect-and-replay.

        Invariants that make this exactly-once:

        * every chunk gets the next contiguous ``seq`` *before* its
          first send and keeps it across resends;
        * the server rejects out-of-order seqs (:class:`SequenceGap`)
          and sheds only *before* the engine (:class:`ServerBusy`), so
          the unacknowledged set is always a contiguous suffix;
        * on any transport fault we retransmit that whole suffix in seq
          order -- acked duplicates return without re-applying.

        One :class:`RetrySchedule` spans consecutive faults and resets
        on any successful acknowledgement, so the deadline bounds each
        outage rather than the whole (arbitrarily long) stream.
        """
        if self._address is None:
            raise RuntimeError(
                "feed_chunks(retry=...) needs a client built via connect()"
            )
        pending: deque[list] = deque()  # [request_id, seq, items, deltas]
        failed: list[list] = []  # rejected (busy/gap), awaiting resend
        state = {"schedule": None}
        total = 0
        position = None

        def backoff(kind: str, exc: BaseException) -> None:
            if state["schedule"] is None:
                state["schedule"] = policy.start()
            delay = state["schedule"].next_delay()
            if delay is None:
                raise exc
            self.retries += 1
            count_retry(kind)
            time.sleep(delay)

        def send_entry(entry: list) -> None:
            entry[0] = self._send(
                "feed",
                items=entry[2],
                deltas=entry[3],
                client=self.client_id,
                seq=entry[1],
            )

        def requeue_all() -> None:
            entries = sorted([*failed, *pending], key=lambda entry: entry[1])
            failed.clear()
            pending.clear()
            pending.extend(entries)

        def reopen_and_replay(exc: BaseException) -> None:
            requeue_all()
            while True:
                backoff("reconnect", exc)
                try:
                    self._reopen()
                    for entry in pending:
                        send_entry(entry)
                except (OSError, ProtocolError) as retry_exc:
                    exc = retry_exc
                    continue
                return

        def drain_step() -> None:
            nonlocal position
            if failed and not pending:
                # Whole suffix was rejected (busy or gap): back off,
                # then resend it in seq order on the live connection.
                backoff("feed-replay", failed[0][4])
                requeue_all()
                for entry in pending:
                    send_entry(entry)
                return
            entry = pending[0]
            try:
                reply = self._drain(entry[0])
            except (ServerBusy, SequenceGap) as exc:
                pending.popleft()
                failed.append(entry[:4] + [exc])
                return
            pending.popleft()
            if not reply.get("duplicate"):
                position = reply["position"]
            state["schedule"] = None  # progress: fresh budget per outage

        def pump(limit: int) -> None:
            while len(pending) + len(failed) > limit or (
                failed and not pending
            ):
                try:
                    drain_step()
                except (OSError, ProtocolError) as exc:
                    reopen_and_replay(exc)

        for items, deltas in source:
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            self._feed_seq += 1
            entry = [None, self._feed_seq, items, deltas]
            pending.append(entry)
            try:
                send_entry(entry)
            except (OSError, ProtocolError) as exc:
                reopen_and_replay(exc)
            pump(window - 1)
        pump(0)
        return {"count": total, "position": position}

    def estimate(self, items) -> np.ndarray:
        """Batched point estimates from the server's merged state."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        return unpack_array(self._request("estimate", items=items))

    def query(self, kind: Optional[str] = None):
        """The sketch family's native query (``kind="f2"`` for F2)."""
        return self._request("query", kind=kind)

    def f2_estimate(self) -> float:
        """Second-moment estimate from the server's merged state."""
        return self.query(kind="f2")

    def snapshot(self) -> bytes:
        """Wire-format snapshot of the server's merged state."""
        return self._request("snapshot")

    def load_snapshot(self, data: bytes, position: Optional[int] = None) -> dict:
        """Restore a snapshot into the server's fleet (recovery)."""
        fields = {"snapshot": bytes(data)}
        if position is not None:
            fields["position"] = int(position)
        return self._request("load_snapshot", **fields)

    def checkpoint(self) -> dict:
        """Force a server-side checkpoint write now."""
        return self._request("checkpoint")

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SketchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncSketchClient:
    """Asyncio counterpart of :class:`SketchClient` (same surface)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = DEFAULT_MAX_FRAME,
        *,
        client_id: Optional[str] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._request_seq = 0
        self.server_info: Optional[dict] = None
        self.client_id = client_id or uuid.uuid4().hex
        self._feed_seq = 0
        self.retries = 0
        self._address: Optional[tuple[str, int]] = None
        self._policy: Optional[RetryPolicy] = None
        self._hello = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_interval: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        hello: bool = True,
        client_id: Optional[str] = None,
    ) -> "AsyncSketchClient":
        """See :meth:`SketchClient.connect` (same retry surface)."""
        policy = _resolve_retry(retry, retries, retry_interval)
        schedule = policy.start()
        while True:
            try:
                reader, writer = await cls._open_stream(host, port, policy)
                break
            except OSError:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                count_retry("connect")
                await asyncio.sleep(delay)
        client = cls(reader, writer, max_frame=max_frame, client_id=client_id)
        client._address = (host, port)
        client._policy = policy
        client._hello = hello
        if hello:
            client.server_info = await client.hello()
        return client

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    async def _open_stream(host: str, port: int, policy: RetryPolicy):
        opening = asyncio.open_connection(host, port)
        if policy.op_timeout is not None:
            try:
                return await asyncio.wait_for(opening, policy.op_timeout)
            except asyncio.TimeoutError:
                raise OSError("connect timed out") from None
        return await opening

    async def _reopen(self) -> None:
        """See :meth:`SketchClient._reopen` (one attempt, same identity)."""
        if self._address is None:
            raise RuntimeError(
                "cannot reconnect: this client was not built via connect()"
            )
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        policy = self._policy or RetryPolicy(max_attempts=1)
        self._reader, self._writer = await self._open_stream(
            self._address[0], self._address[1], policy
        )
        if self._hello:
            self.server_info = await self.hello()

    async def _send(self, op: str, **fields) -> int:
        self._request_seq += 1
        await write_message(
            self._writer, make_request(op, self._request_seq, **fields)
        )
        return self._request_seq

    async def _drain(self, request_id: int):
        message = await read_message(self._reader, self._max_frame)
        if message is None:
            raise ProtocolError("connection closed while awaiting a reply")
        return raise_for_reply(message, request_id)

    async def _drain_timed(self, request_id: int):
        timeout = self._policy.op_timeout if self._policy else None
        if timeout is None:
            return await self._drain(request_id)
        try:
            return await asyncio.wait_for(self._drain(request_id), timeout)
        except asyncio.TimeoutError:
            raise OSError("reply timed out") from None

    async def _request(self, op: str, **fields):
        return await self._drain(await self._send(op, **fields))

    # -- the call surface ---------------------------------------------------

    async def hello(self) -> dict:
        """See :meth:`SketchClient.hello`."""
        return await self._request("hello")

    async def ping(self) -> dict:
        """See :meth:`SketchClient.ping`."""
        return await self._request("ping")

    async def stats(self) -> dict:
        """See :meth:`SketchClient.stats`."""
        return await self._request("stats")

    async def metrics(self) -> dict:
        """See :meth:`SketchClient.metrics`."""
        return await self._request("metrics")

    async def alerts(self) -> dict:
        """See :meth:`SketchClient.alerts`."""
        return await self._request("alerts")

    async def feed(self, items, deltas) -> dict:
        """See :meth:`SketchClient.feed`."""
        items, deltas = _as_feed_arrays(items, deltas)
        return await self._request("feed", items=items, deltas=deltas)

    async def feed_chunks(
        self,
        source,
        window: int = DEFAULT_WINDOW,
        retry: Optional[RetryPolicy] = None,
    ) -> dict:
        """Pipelined chunk streaming (see :meth:`SketchClient.feed_chunks`).

        ``source`` may be a sync or async iterable of chunk pairs.  With
        ``retry=`` a policy, chunks are sequenced and the stream
        reconnects and retransmits exactly-once, as in the sync client.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if retry is not None:
            return await self._feed_chunks_resilient(source, window, retry)
        pending: deque[int] = deque()
        total = 0
        position = None

        async def _push(items, deltas) -> None:
            nonlocal position, total
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            pending.append(await self._send("feed", items=items, deltas=deltas))
            if len(pending) >= window:
                position = (await self._drain(pending.popleft()))["position"]

        if hasattr(source, "__aiter__"):
            async for items, deltas in source:
                await _push(items, deltas)
        else:
            for items, deltas in source:
                await _push(items, deltas)
        while pending:
            position = (await self._drain(pending.popleft()))["position"]
        return {"count": total, "position": position}

    async def _feed_chunks_resilient(
        self, source, window: int, policy: RetryPolicy
    ) -> dict:
        """Async twin of :meth:`SketchClient._feed_chunks_resilient`."""
        if self._address is None:
            raise RuntimeError(
                "feed_chunks(retry=...) needs a client built via connect()"
            )
        pending: deque[list] = deque()
        failed: list[list] = []
        state = {"schedule": None}
        total = 0
        position = None

        async def backoff(kind: str, exc: BaseException) -> None:
            if state["schedule"] is None:
                state["schedule"] = policy.start()
            delay = state["schedule"].next_delay()
            if delay is None:
                raise exc
            self.retries += 1
            count_retry(kind)
            await asyncio.sleep(delay)

        async def send_entry(entry: list) -> None:
            entry[0] = await self._send(
                "feed",
                items=entry[2],
                deltas=entry[3],
                client=self.client_id,
                seq=entry[1],
            )

        def requeue_all() -> None:
            entries = sorted([*failed, *pending], key=lambda entry: entry[1])
            failed.clear()
            pending.clear()
            pending.extend(entries)

        async def reopen_and_replay(exc: BaseException) -> None:
            requeue_all()
            while True:
                await backoff("reconnect", exc)
                try:
                    await self._reopen()
                    for entry in pending:
                        await send_entry(entry)
                except (OSError, ProtocolError) as retry_exc:
                    exc = retry_exc
                    continue
                return

        async def drain_step() -> None:
            nonlocal position
            if failed and not pending:
                await backoff("feed-replay", failed[0][4])
                requeue_all()
                for entry in pending:
                    await send_entry(entry)
                return
            entry = pending[0]
            try:
                reply = await self._drain_timed(entry[0])
            except (ServerBusy, SequenceGap) as exc:
                pending.popleft()
                failed.append(entry[:4] + [exc])
                return
            pending.popleft()
            if not reply.get("duplicate"):
                position = reply["position"]
            state["schedule"] = None

        async def pump(limit: int) -> None:
            while len(pending) + len(failed) > limit or (
                failed and not pending
            ):
                try:
                    await drain_step()
                except (OSError, ProtocolError) as exc:
                    await reopen_and_replay(exc)

        async def push(items, deltas) -> None:
            nonlocal total
            items, deltas = _as_feed_arrays(items, deltas)
            total += len(items)
            self._feed_seq += 1
            entry = [None, self._feed_seq, items, deltas]
            pending.append(entry)
            try:
                await send_entry(entry)
            except (OSError, ProtocolError) as exc:
                await reopen_and_replay(exc)
            await pump(window - 1)

        if hasattr(source, "__aiter__"):
            async for items, deltas in source:
                await push(items, deltas)
        else:
            for items, deltas in source:
                await push(items, deltas)
        await pump(0)
        return {"count": total, "position": position}

    async def estimate(self, items) -> np.ndarray:
        """See :meth:`SketchClient.estimate`."""
        items = np.ascontiguousarray(items, dtype=np.int64)
        return unpack_array(await self._request("estimate", items=items))

    async def query(self, kind: Optional[str] = None):
        """See :meth:`SketchClient.query`."""
        return await self._request("query", kind=kind)

    async def f2_estimate(self) -> float:
        """See :meth:`SketchClient.f2_estimate`."""
        return await self.query(kind="f2")

    async def snapshot(self) -> bytes:
        """See :meth:`SketchClient.snapshot`."""
        return await self._request("snapshot")

    async def load_snapshot(self, data: bytes, position: Optional[int] = None) -> dict:
        """See :meth:`SketchClient.load_snapshot`."""
        fields = {"snapshot": bytes(data)}
        if position is not None:
            fields["position"] = int(position)
        return await self._request("load_snapshot", **fields)

    async def checkpoint(self) -> dict:
        """See :meth:`SketchClient.checkpoint`."""
        return await self._request("checkpoint")

    async def close(self) -> None:
        """Close the connection and wait for the transport to drop."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncSketchClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
