"""`SketchCoordinator`: universe partitioning across a fleet of servers.

Where :class:`~repro.service.server.SketchServer` scales one host (its
shards share a process pool), the coordinator scales *hosts*: it owns
the :class:`~repro.parallel.partition.UniversePartitioner`, routes each
update batch's per-server slices to the servers owning them, and fans
state back in as wire-format snapshots -- the same
fingerprint-verified ``restore`` / ``merge_snapshot`` payloads the
in-process merge protocol uses, now routed between worker pools over
TCP.  Because every server's fleet is built from the same factory (the
``hello`` handshake proves it: all construction fingerprints must
coincide), the merged result is bit-identical to one engine fed the
whole stream -- the multi-host deployment inherits the single-engine
white-box semantics unchanged.

Checkpoint/recovery rides the same wire: ``checkpoint(path)`` pulls and
merges all server snapshots and writes one standard checkpoint file
(:mod:`repro.distributed.checkpoint`); ``recover(path)`` pushes the
checkpointed merged state into server 0 of a fresh fleet -- merging
being exact, a fleet holding the merged state in one server and nothing
in the others continues exactly like the uninterrupted deployment, and
the caller replays the stream tail from the returned position.

Failover
--------
The coordinator keeps a per-server snapshot cache (seeded at
``connect``, refreshed by every successful :meth:`merged` fan-in).  When
a server is down, :meth:`merged` *degrades* instead of failing: the dead
server contributes its cached snapshot, the read is annotated in
``coordinator.last_read`` (which servers were stale, and at what cached
position), and ``repro_coordinator_degraded_reads_total`` counts it --
an estimate served during an outage is old news for the dead shard's
items, never wrong news for the rest.  A recovered server rejoins via
:meth:`readmit`, which reconnects, re-verifies the construction
fingerprint, and (when the server came back empty) pushes the cached
snapshot through the same ``load_snapshot`` path :meth:`recover` uses.

The coordinator is asyncio-native (it multiplexes N server connections
concurrently); wrap calls with :func:`asyncio.run` from sync code.
"""

from __future__ import annotations

import asyncio
import copy
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.algorithm import StreamAlgorithm
from repro.distributed.checkpoint import load_checkpoint, save_checkpoint
from repro.distributed.codec import (
    FingerprintMismatch,
    construction_fingerprint,
)
from repro.obs import (
    DEGRADED_READS_METRIC,
    get_registry as _get_obs_registry,
)
from repro.parallel.partition import UniversePartitioner
from repro.service.client import AsyncSketchClient
from repro.service.retry import RetryPolicy

__all__ = ["SketchCoordinator"]

_obs_registry = _get_obs_registry()
_obs_degraded = _obs_registry.counter(
    DEGRADED_READS_METRIC,
    "Coordinator reads answered with at least one stale cached shard",
)


class SketchCoordinator:
    """Routes one logical stream across many sketch servers.

    Parameters
    ----------
    factory:
        The same zero-argument replica factory every server was built
        with; the coordinator keeps one local *template* instance (never
        fed) for fingerprint checks and merge fan-in.
    addresses:
        ``(host, port)`` pairs, one per server; their order defines the
        partition index.
    partitioner:
        Item -> server map; defaults to a seed-0
        :class:`UniversePartitioner` over ``len(addresses)`` parts --
        the same default a :class:`ShardedAlgorithm` of that width uses,
        so a coordinator fleet partitions identically to a local fleet.
    """

    def __init__(
        self,
        factory: Callable[[], StreamAlgorithm],
        addresses: Sequence[tuple[str, int]],
        partitioner: Optional[UniversePartitioner] = None,
    ) -> None:
        if not addresses:
            raise ValueError("coordinator needs at least one server address")
        self.factory = factory
        self.addresses = list(addresses)
        self.partitioner = partitioner or UniversePartitioner(len(self.addresses))
        self.template = factory()
        self.fingerprint = construction_fingerprint(self.template)
        self.clients: list[AsyncSketchClient] = []
        #: Updates routed so far (absolute once ``recover`` seeds it).
        self.position = 0
        self._policy: Optional[RetryPolicy] = None
        #: Per-server snapshot cache backing degraded reads: last known
        #: good merged-state bytes and the coordinator position they
        #: were observed at.
        self._snapshots: list[Optional[bytes]] = [None] * len(self.addresses)
        self._snapshot_positions: list[int] = [0] * len(self.addresses)
        #: Annotation of the most recent :meth:`merged` fan-in:
        #: ``{"degraded", "stale", "stale_positions", "position"}``.
        self.last_read: dict = {
            "degraded": False,
            "stale": [],
            "stale_positions": {},
            "position": 0,
        }
        #: Per-server health from the last :meth:`health` sweep.
        self.server_health: list[dict] = []
        #: Degraded reads served so far (functional twin of the metric).
        self.degraded_reads = 0

    # -- lifecycle ----------------------------------------------------------

    async def connect(
        self,
        retries: int = 0,
        retry_interval: Optional[float] = None,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> "SketchCoordinator":
        """Connect to every server and verify construction identity.

        Retries follow the same surface as :meth:`SketchClient.connect`
        (``retry=`` policy wins; bare ``retries=`` gets the default
        exponential shape; ``retry_interval=`` is deprecated).  A server
        whose ``hello`` fingerprint differs from the local template's
        was built with other parameters or another seed; routing updates
        to it would silently break merge exactness, so the handshake
        raises :class:`FingerprintMismatch` instead.  The per-server
        snapshot cache is seeded here so degraded reads are possible
        from the first fan-in on.
        """
        if self.clients:
            raise RuntimeError("coordinator already connected")
        from repro.service.client import _resolve_retry

        policy = _resolve_retry(retry, retries, retry_interval)
        self._policy = policy
        self.clients = list(
            await asyncio.gather(
                *(
                    AsyncSketchClient.connect(host, port, retry=policy)
                    for host, port in self.addresses
                )
            )
        )
        for address, client in zip(self.addresses, self.clients):
            fingerprint = client.server_info["fingerprint"]
            if fingerprint != self.fingerprint:
                await self.close()
                raise FingerprintMismatch(
                    f"server {address[0]}:{address[1]} holds a differently-"
                    "constructed sketch; every server must be built from the "
                    "coordinator's factory (same parameters, same seed)"
                )
        snapshots = await asyncio.gather(
            *(client.snapshot() for client in self.clients)
        )
        self._snapshots = list(snapshots)
        self._snapshot_positions = [self.position] * len(self.clients)
        return self

    async def close(self) -> None:
        """Close every server connection (idempotent)."""
        clients, self.clients = self.clients, []
        for client in clients:
            await client.close()

    async def __aenter__(self) -> "SketchCoordinator":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _require_clients(self) -> list[AsyncSketchClient]:
        if not self.clients:
            raise RuntimeError("coordinator is not connected (call connect())")
        return self.clients

    # -- routing ------------------------------------------------------------

    async def feed(self, items, deltas) -> int:
        """Partition one batch and feed every server its slice, concurrently.

        Returns the coordinator's stream position after the batch.  The
        per-server slices preserve stream order (the partitioner's
        counting sort is stable), so each server sees exactly the
        sub-stream of its items -- the distributed mirror of
        ``ShardedAlgorithm.process_batch``.
        """
        clients = self._require_clients()
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if items.size:
            parts = self.partitioner.split(items, deltas)
            await asyncio.gather(
                *(
                    client.feed(part[0], part[1])
                    for client, part in zip(clients, parts)
                    if part is not None and len(part[0])
                )
            )
            self.position += int(items.size)
        return self.position

    async def feed_chunks(self, source) -> int:
        """Drive a sync iterable of ``(items, deltas)`` chunks through
        :meth:`feed`; returns the final position."""
        for items, deltas in source:
            await self.feed(items, deltas)
        return self.position

    # -- fan-in: the wire merge --------------------------------------------

    async def merged(self, allow_degraded: bool = True) -> StreamAlgorithm:
        """One sketch equal to a single engine fed the whole stream.

        Pulls every server's merged snapshot concurrently and folds them
        into a deep copy of the local template -- ``restore`` for the
        first payload, fingerprint-verified merges for the rest, exactly
        the :meth:`ShardedAlgorithm.merged` fan-in with TCP in the
        middle.

        With ``allow_degraded`` (the default), a server that cannot
        answer contributes its *cached* snapshot instead of failing the
        whole read; ``coordinator.last_read`` records which servers were
        stale and at what cached position, and the degraded-reads
        counter ticks (the ``degraded-reads`` default alert rule watches
        it).  ``allow_degraded=False`` restores fail-fast semantics --
        checkpoints use it, because a checkpoint must never quietly
        freeze a dead shard's past.
        """
        clients = self._require_clients()
        results = await asyncio.gather(
            *(client.snapshot() for client in clients),
            return_exceptions=True,
        )
        snapshots: list[bytes] = []
        stale: list[int] = []
        for index, result in enumerate(results):
            if isinstance(result, BaseException):
                if (
                    not allow_degraded
                    or self._snapshots[index] is None
                ):
                    raise result
                snapshots.append(self._snapshots[index])
                stale.append(index)
            else:
                snapshots.append(result)
                self._snapshots[index] = result
                self._snapshot_positions[index] = self.position
        self.last_read = {
            "degraded": bool(stale),
            "stale": stale,
            "stale_positions": {
                index: self._snapshot_positions[index] for index in stale
            },
            "position": self.position,
        }
        if stale:
            self.degraded_reads += 1
            if _obs_registry.enabled:
                _obs_degraded.add(1, servers=str(len(stale)))
        merged = copy.deepcopy(self.template)
        merged.restore(snapshots[0])
        if len(snapshots) > 1:
            twin = copy.deepcopy(self.template)
            for snapshot in snapshots[1:]:
                twin.restore(snapshot)
                merged.merge(twin)
        return merged

    async def estimate(self, items) -> np.ndarray:
        """Batched point estimates answered from the wire-merged state."""
        return (await self.merged()).estimate_batch(items)

    async def query(self, kind: Optional[str] = None):
        """The family's native query from the wire-merged state."""
        merged = await self.merged()
        if kind in (None, "default"):
            return merged.query()
        if kind == "f2":
            return merged.f2_estimate()
        raise ValueError(f"unknown query kind {kind!r}")

    async def stats(self) -> list[dict]:
        """Every server's liveness/monitoring payload, in address order."""
        clients = self._require_clients()
        return list(await asyncio.gather(*(client.stats() for client in clients)))

    async def health(self) -> list[dict]:
        """Ping every server; per-server ``{"address", "ok", ...}`` dicts.

        A failed ping reports ``ok=False`` with the error text instead of
        raising -- health sweeps must degrade, not error.  The result is
        also stored in ``coordinator.server_health`` so a supervisor can
        poll one attribute between sweeps.
        """
        clients = self._require_clients()
        results = await asyncio.gather(
            *(client.ping() for client in clients), return_exceptions=True
        )
        health = []
        for address, result in zip(self.addresses, results):
            entry: dict = {"address": f"{address[0]}:{address[1]}"}
            if isinstance(result, BaseException):
                entry["ok"] = False
                entry["error"] = f"{type(result).__name__}: {result}"
            else:
                entry["ok"] = True
                entry["position"] = result.get("position")
            health.append(entry)
        self.server_health = health
        return health

    async def readmit(self, index: int) -> dict:
        """Reconnect server ``index`` and fold it back into the fleet.

        The recovery mirror of a degraded read: reconnects under the
        coordinator's retry policy, re-verifies the construction
        fingerprint (a restarted-with-the-wrong-seed server must not
        rejoin), and -- when the server came back *empty* (position 0)
        while the cache holds state for it -- pushes the cached snapshot
        through the same ``load_snapshot`` path :meth:`recover` uses, so
        the shard resumes from its last observed state instead of
        forgetting its history.  A server that restarted from its own
        checkpoint (position > 0) keeps its richer state untouched.

        Returns ``{"address", "restored", "position"}``.
        """
        clients = self._require_clients()
        if not 0 <= index < len(clients):
            raise IndexError(f"server index {index} outside fleet")
        host, port = self.addresses[index]
        await clients[index].close()
        client = await AsyncSketchClient.connect(
            host, port, retry=self._policy or RetryPolicy(max_attempts=1)
        )
        if client.server_info["fingerprint"] != self.fingerprint:
            await client.close()
            raise FingerprintMismatch(
                f"server {host}:{port} came back differently-constructed; "
                "refusing to re-admit it into the fleet"
            )
        clients[index] = client
        restored = False
        pong = await client.ping()
        if not pong.get("position") and self._snapshots[index] is not None:
            await client.load_snapshot(
                self._snapshots[index],
                position=self._snapshot_positions[index],
            )
            restored = True
        pong = await client.ping()
        return {
            "address": f"{host}:{port}",
            "restored": restored,
            "position": pong.get("position"),
        }

    async def metrics(self) -> dict:
        """The whole fleet's telemetry as one merged registry snapshot.

        Gathers every server's ``metrics`` reply and folds the snapshots
        through :func:`repro.obs.merge_snapshots` -- the same
        commutative fan-in each server already applied to its own
        process-backend workers -- then renders one Prometheus
        exposition.  Returns ``{"servers", "snapshot", "exposition",
        "content_type"}``.
        """
        from repro.obs import (
            EXPOSITION_CONTENT_TYPE,
            merge_snapshots,
            render_prometheus,
        )

        clients = self._require_clients()
        replies = await asyncio.gather(
            *(client.metrics() for client in clients)
        )
        snapshot = merge_snapshots([reply["snapshot"] for reply in replies])
        return {
            "servers": [reply["server"] for reply in replies],
            "snapshot": snapshot,
            "exposition": render_prometheus(snapshot),
            "content_type": EXPOSITION_CONTENT_TYPE,
        }

    async def alerts(self) -> dict:
        """The fleet's alert states, merged most-severe-wins.

        Gathers every server's ``alerts`` reply (each server runs one
        evaluation pass) and folds them with
        :func:`repro.obs.alerts.merge_alert_payloads`: per rule, the
        most severe state wins (``firing > pending > resolved >
        inactive``) and the winning server's label is recorded as
        ``source`` -- the fleet pages if any node pages.
        """
        from repro.obs.alerts import merge_alert_payloads

        clients = self._require_clients()
        replies = await asyncio.gather(
            *(client.alerts() for client in clients)
        )
        return merge_alert_payloads(
            replies, sources=[reply.get("server") for reply in replies]
        )

    # -- checkpoint / recovery over the wire --------------------------------

    async def checkpoint(self, path) -> int:
        """Write one standard checkpoint file of the fleet's merged state.

        The file is indistinguishable from a local engine's checkpoint --
        it can resume a single engine, a local sharded fleet, or another
        coordinator fleet of any width.  Returns the recorded position.
        Fail-fast: a checkpoint is never written from a degraded read.
        """
        merged = await self.merged(allow_degraded=False)
        save_checkpoint(
            path,
            merged,
            self.position,
            meta={"servers": len(self.addresses), "source": "coordinator"},
        )
        return self.position

    async def recover(self, path) -> int:
        """Restore a checkpoint into a fresh fleet; returns the position.

        The merged snapshot lands whole in server 0 (the other servers
        stay empty -- exact merging makes that equivalent to the
        uninterrupted deployment).  The caller replays the stream tail
        from the returned position, e.g. via
        :func:`repro.distributed.checkpoint.tail_chunks`.
        """
        clients = self._require_clients()
        checkpoint = load_checkpoint(path)
        await clients[0].load_snapshot(
            checkpoint.snapshot, position=checkpoint.position
        )
        self.position = checkpoint.position
        return self.position
