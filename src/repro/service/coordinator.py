"""`SketchCoordinator`: universe partitioning across a fleet of servers.

Where :class:`~repro.service.server.SketchServer` scales one host (its
shards share a process pool), the coordinator scales *hosts*: it owns
the :class:`~repro.parallel.partition.UniversePartitioner`, routes each
update batch's per-server slices to the servers owning them, and fans
state back in as wire-format snapshots -- the same
fingerprint-verified ``restore`` / ``merge_snapshot`` payloads the
in-process merge protocol uses, now routed between worker pools over
TCP.  Because every server's fleet is built from the same factory (the
``hello`` handshake proves it: all construction fingerprints must
coincide), the merged result is bit-identical to one engine fed the
whole stream -- the multi-host deployment inherits the single-engine
white-box semantics unchanged.

Checkpoint/recovery rides the same wire: ``checkpoint(path)`` pulls and
merges all server snapshots and writes one standard checkpoint file
(:mod:`repro.distributed.checkpoint`); ``recover(path)`` pushes the
checkpointed merged state into server 0 of a fresh fleet -- merging
being exact, a fleet holding the merged state in one server and nothing
in the others continues exactly like the uninterrupted deployment, and
the caller replays the stream tail from the returned position.

Failover
--------
The coordinator keeps a per-server snapshot cache (seeded at
``connect``, refreshed by every successful :meth:`merged` fan-in and
every ``journal_every``-chunk rotation) plus a per-server *journal* of
update slices acknowledged since the last cache refresh.  Cache plus
journal is the server's exact acknowledged state -- the invariant both
recovery paths lean on.  When a server is down, :meth:`merged`
*degrades* instead of failing: the dead server contributes its cached
snapshot, the read is annotated in ``coordinator.last_read``, and
``repro_coordinator_degraded_reads_total`` counts it -- an estimate
served during an outage is old news for the dead shard's items, never
wrong news for the rest.

Two recovery paths close the loop:

* :meth:`readmit` -- a *returning* server reconnects (same client
  identity, so the server-side feed dedup keeps working), re-verifies
  the construction fingerprint, and -- when it came back empty -- is
  restored from the cache and replayed the journal, then the cache is
  refreshed from its live state;
* :meth:`migrate_server` -- a *permanently lost* server's state moves
  to a survivor: its cached snapshot is folded into the destination via
  a fingerprint-verified ``load_snapshot(merge=True)``, its journal is
  replayed as sequenced feeds, and the routing table atomically remaps
  its partitions.  In-flight :meth:`feed` retries re-resolve routing on
  every attempt, so they replay against the new owner exactly-once.

Both run under the coordinator's feed lock (one request in flight per
connection; routing swaps happen only between chunk boundaries).  The
background :class:`~repro.service.membership.FleetProber` drives both
automatically -- see :meth:`start_prober`.

The coordinator is asyncio-native (it multiplexes N server connections
concurrently); wrap calls with :func:`asyncio.run` from sync code.
"""

from __future__ import annotations

import asyncio
import copy
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.algorithm import StreamAlgorithm
from repro.distributed.checkpoint import load_checkpoint, save_checkpoint
from repro.distributed.codec import (
    FingerprintMismatch,
    construction_fingerprint,
)
from repro.obs import (
    DEGRADED_READS_METRIC,
    MIGRATIONS_ACTIVE_METRIC,
    SHARD_MIGRATIONS_METRIC,
    get_registry as _get_obs_registry,
)
from repro.parallel.partition import UniversePartitioner
from repro.service.client import AsyncSketchClient
from repro.service.protocol import ProtocolError
from repro.service.retry import RetryPolicy, count_retry

__all__ = ["SketchCoordinator"]

_obs_registry = _get_obs_registry()
_obs_degraded = _obs_registry.counter(
    DEGRADED_READS_METRIC,
    "Coordinator reads answered with at least one stale cached shard",
)
_obs_migrations = _obs_registry.counter(
    SHARD_MIGRATIONS_METRIC,
    "Cross-server shard migrations completed",
)
_obs_migrations_active = _obs_registry.gauge(
    MIGRATIONS_ACTIVE_METRIC,
    "Shard migrations currently executing",
)


class SketchCoordinator:
    """Routes one logical stream across many sketch servers.

    Parameters
    ----------
    factory:
        The same zero-argument replica factory every server was built
        with; the coordinator keeps one local *template* instance (never
        fed) for fingerprint checks and merge fan-in.
    addresses:
        ``(host, port)`` pairs, one per server; their order defines the
        partition index.
    partitioner:
        Item -> partition map; defaults to a seed-0
        :class:`UniversePartitioner` over ``len(addresses)`` parts --
        the same default a :class:`ShardedAlgorithm` of that width uses,
        so a coordinator fleet partitions identically to a local fleet.
        Partitions map to servers through the ``routing`` table
        (identity until a migration remaps a dead server's partitions).
    journal_every:
        Feed chunks between journal rotations (cache refresh + journal
        clear).  Smaller keeps less replay state in memory; larger
        snapshots the fleet less often.
    """

    def __init__(
        self,
        factory: Callable[[], StreamAlgorithm],
        addresses: Sequence[tuple[str, int]],
        partitioner: Optional[UniversePartitioner] = None,
        *,
        journal_every: int = 8,
    ) -> None:
        if not addresses:
            raise ValueError("coordinator needs at least one server address")
        if journal_every < 1:
            raise ValueError(f"journal_every must be >= 1, got {journal_every}")
        self.factory = factory
        self.addresses = list(addresses)
        self.partitioner = partitioner or UniversePartitioner(len(self.addresses))
        self.template = factory()
        self.fingerprint = construction_fingerprint(self.template)
        self.clients: list[AsyncSketchClient] = []
        #: Updates routed so far (absolute once ``recover`` seeds it).
        self.position = 0
        self._policy: Optional[RetryPolicy] = None
        #: Partition index -> owning server index.  Identity until a
        #: migration remaps a dead server's partitions to a survivor.
        self.routing: list[int] = list(range(len(self.addresses)))
        #: Servers whose partitions have been migrated away (standby if
        #: they return; they own no routing until re-planned).
        self._migrated: set[int] = set()
        #: Per-server replay journal: update slices acknowledged since
        #: the last cache refresh.  Cache + journal = exact acked state.
        self._journals: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in self.addresses
        ]
        self._chunks_since_rotate = 0
        self.journal_every = int(journal_every)
        #: Updates routed per server (the migration planner's load key).
        self.routed_updates: list[int] = [0] * len(self.addresses)
        #: Migrations completed (functional twin of the metric).
        self.migrations = 0
        #: One request in flight per connection: feeds, fan-ins, and
        #: routing swaps all serialize here (waits happen off-lock).
        self._feed_lock = asyncio.Lock()
        #: Per-server snapshot cache backing degraded reads: last known
        #: good merged-state bytes and the coordinator position they
        #: were observed at.
        self._snapshots: list[Optional[bytes]] = [None] * len(self.addresses)
        self._snapshot_positions: list[int] = [0] * len(self.addresses)
        #: Annotation of the most recent :meth:`merged` fan-in:
        #: ``{"degraded", "stale", "stale_positions", "position"}``.
        self.last_read: dict = {
            "degraded": False,
            "stale": [],
            "stale_positions": {},
            "position": 0,
        }
        #: Per-server health from the last :meth:`health` sweep.
        self.server_health: list[dict] = []
        #: Degraded reads served so far (functional twin of the metric).
        self.degraded_reads = 0
        self.prober = None

    # -- lifecycle ----------------------------------------------------------

    async def connect(
        self,
        retries: int = 0,
        retry_interval: Optional[float] = None,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> "SketchCoordinator":
        """Connect to every server and verify construction identity.

        Retries follow the same surface as :meth:`SketchClient.connect`
        (``retry=`` policy wins; bare ``retries=`` gets the default
        exponential shape; ``retry_interval=`` is deprecated).  A server
        whose ``hello`` fingerprint differs from the local template's
        was built with other parameters or another seed; routing updates
        to it would silently break merge exactness, so the handshake
        raises :class:`FingerprintMismatch` instead.  The per-server
        snapshot cache is seeded here so degraded reads are possible
        from the first fan-in on.
        """
        if self.clients:
            raise RuntimeError("coordinator already connected")
        from repro.service.client import _resolve_retry

        policy = _resolve_retry(retry, retries, retry_interval)
        self._policy = policy
        self.clients = list(
            await asyncio.gather(
                *(
                    AsyncSketchClient.connect(host, port, retry=policy)
                    for host, port in self.addresses
                )
            )
        )
        for address, client in zip(self.addresses, self.clients):
            fingerprint = client.server_info["fingerprint"]
            if fingerprint != self.fingerprint:
                await self.close()
                raise FingerprintMismatch(
                    f"server {address[0]}:{address[1]} holds a differently-"
                    "constructed sketch; every server must be built from the "
                    "coordinator's factory (same parameters, same seed)"
                )
        snapshots = await asyncio.gather(
            *(client.snapshot() for client in self.clients)
        )
        self._snapshots = list(snapshots)
        self._snapshot_positions = [self.position] * len(self.clients)
        return self

    async def close(self) -> None:
        """Stop the prober and close every server connection (idempotent)."""
        if self.prober is not None:
            prober, self.prober = self.prober, None
            await prober.stop()
        clients, self.clients = self.clients, []
        for client in clients:
            await client.close()

    async def __aenter__(self) -> "SketchCoordinator":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _require_clients(self) -> list[AsyncSketchClient]:
        if not self.clients:
            raise RuntimeError("coordinator is not connected (call connect())")
        return self.clients

    def start_prober(self, **kwargs):
        """Attach and start a background :class:`FleetProber`.

        Keyword arguments pass through to the prober constructor
        (cadence policy, thresholds, clock).  The prober task runs on
        the current loop until :meth:`close` (or ``prober.stop()``).
        """
        from repro.service.membership import FleetProber

        if self.prober is not None:
            raise RuntimeError("coordinator already has a prober attached")
        self.prober = FleetProber(self, **kwargs)
        self.prober.start()
        return self.prober

    # -- routing ------------------------------------------------------------

    async def _send_feed(
        self, client: AsyncSketchClient, seq: int, items, deltas
    ) -> dict:
        """One sequenced feed attempt with a single inline reconnect.

        Resending the *same* ``(client_id, seq)`` is the exactly-once
        mechanism: a chunk that was applied but whose ack was lost comes
        back as a duplicate-ack, never a double apply.
        """
        async def attempt() -> dict:
            request_id = await client._send(
                "feed",
                items=items,
                deltas=deltas,
                client=client.client_id,
                seq=seq,
            )
            return await client._drain_timed(request_id)

        try:
            return await attempt()
        except (OSError, ProtocolError):
            await client._reopen()
            return await attempt()

    async def feed(self, items, deltas) -> int:
        """Partition one batch and feed every owning server its slice.

        Returns the coordinator's stream position after the batch.  The
        per-server slices preserve stream order (the partitioner's
        counting sort is stable), so each server sees exactly the
        sub-stream of its items -- the distributed mirror of
        ``ShardedAlgorithm.process_batch``.

        Slices are sequenced under the coordinator's per-server client
        identity and retried under the connect policy: transient
        failures (reset connections, ``busy`` sheds) back off and resend
        the same sequence numbers, and every retry re-resolves the
        routing table -- so a slice whose owner died mid-batch replays
        against the server its partitions migrated to.  Backoff sleeps
        happen outside the feed lock, so a stuck slice never blocks the
        fan-in or a migration that would unstick it.
        """
        clients = self._require_clients()
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if not items.size:
            return self.position
        parts = self.partitioner.split(items, deltas)
        pending: dict[int, tuple] = {
            index: part
            for index, part in enumerate(parts)
            if part is not None and len(part[0])
        }
        # owner -> (seq, partition tuple, items, deltas): a reserved
        # sequence number survives retries of the same slice group, and
        # is re-drawn only when routing changes the group's composition.
        reservations: dict[int, tuple] = {}
        schedule = None
        last_error: Optional[BaseException] = None
        while pending:
            async with self._feed_lock:
                groups: dict[int, list[int]] = {}
                for partition in sorted(pending):
                    groups.setdefault(self.routing[partition], []).append(
                        partition
                    )
                sends = []
                for owner in sorted(groups):
                    group = tuple(groups[owner])
                    reserved = reservations.get(owner)
                    if reserved is None or reserved[1] != group:
                        client = clients[owner]
                        client._feed_seq += 1
                        if len(group) == 1:
                            merged_items, merged_deltas = pending[group[0]]
                        else:
                            merged_items = np.concatenate(
                                [pending[p][0] for p in group]
                            )
                            merged_deltas = np.concatenate(
                                [pending[p][1] for p in group]
                            )
                        reserved = (
                            client._feed_seq, group, merged_items, merged_deltas
                        )
                        reservations[owner] = reserved
                    sends.append((owner, reserved))
                results = await asyncio.gather(
                    *(
                        self._send_feed(
                            clients[owner], entry[0], entry[2], entry[3]
                        )
                        for owner, entry in sends
                    ),
                    return_exceptions=True,
                )
                for (owner, entry), result in zip(sends, results):
                    if isinstance(result, BaseException):
                        last_error = result
                        continue
                    for partition in entry[1]:
                        pending.pop(partition, None)
                    self._journals[owner].append((entry[2], entry[3]))
                    self.routed_updates[owner] += int(entry[2].size)
                    reservations.pop(owner, None)
            if not pending:
                break
            if schedule is None:
                schedule = (self._policy or RetryPolicy()).start()
            delay = schedule.next_delay()
            if delay is None:
                raise last_error
            count_retry("coordinator-feed")
            await asyncio.sleep(delay)
        self.position += int(items.size)
        self._chunks_since_rotate += 1
        if self._chunks_since_rotate >= self.journal_every:
            await self._rotate_journals()
        return self.position

    async def feed_chunks(self, source) -> int:
        """Drive a sync iterable of ``(items, deltas)`` chunks through
        :meth:`feed`; returns the final position."""
        for items, deltas in source:
            await self.feed(items, deltas)
        return self.position

    async def _rotate_journals(self) -> None:
        """Refresh the snapshot cache and drop the replayed-past journals.

        Best-effort per server: a server that cannot answer keeps its
        journal (cache + journal stays its exact acked state, which is
        precisely what a later migration or readmission replays).
        """
        clients = self._require_clients()
        async with self._feed_lock:
            self._chunks_since_rotate = 0
            active = [
                index
                for index, journal in enumerate(self._journals)
                if journal and index not in self._migrated
            ]
            if not active:
                return
            results = await asyncio.gather(
                *(clients[index].snapshot() for index in active),
                return_exceptions=True,
            )
            for index, result in zip(active, results):
                if isinstance(result, BaseException):
                    continue
                self._snapshots[index] = result
                self._snapshot_positions[index] = self.position
                self._journals[index].clear()

    # -- fan-in: the wire merge --------------------------------------------

    async def merged(self, allow_degraded: bool = True) -> StreamAlgorithm:
        """One sketch equal to a single engine fed the whole stream.

        Pulls every active server's merged snapshot concurrently and
        folds them into a deep copy of the local template -- ``restore``
        for the first payload, fingerprint-verified merges for the rest,
        exactly the :meth:`ShardedAlgorithm.merged` fan-in with TCP in
        the middle.  Servers whose partitions migrated away are skipped
        entirely (their state lives on, and is counted by, the
        destination server).

        With ``allow_degraded`` (the default), a server that cannot
        answer contributes its *cached* snapshot instead of failing the
        whole read; ``coordinator.last_read`` records which servers were
        stale and at what cached position, and the degraded-reads
        counter ticks (the ``degraded-reads`` default alert rule watches
        it).  ``allow_degraded=False`` restores fail-fast semantics --
        checkpoints use it, because a checkpoint must never quietly
        freeze a dead shard's past.
        """
        clients = self._require_clients()
        async with self._feed_lock:
            active = [
                index
                for index in range(len(clients))
                if index not in self._migrated
            ]
            results = await asyncio.gather(
                *(clients[index].snapshot() for index in active),
                return_exceptions=True,
            )
            snapshots: list[bytes] = []
            stale: list[int] = []
            for index, result in zip(active, results):
                if isinstance(result, BaseException):
                    if (
                        not allow_degraded
                        or self._snapshots[index] is None
                    ):
                        raise result
                    snapshots.append(self._snapshots[index])
                    stale.append(index)
                else:
                    snapshots.append(result)
                    self._snapshots[index] = result
                    self._snapshot_positions[index] = self.position
                    self._journals[index].clear()
        self.last_read = {
            "degraded": bool(stale),
            "stale": stale,
            "stale_positions": {
                index: self._snapshot_positions[index] for index in stale
            },
            "position": self.position,
        }
        if stale:
            self.degraded_reads += 1
            if _obs_registry.enabled:
                _obs_degraded.add(1, servers=str(len(stale)))
        merged = copy.deepcopy(self.template)
        merged.restore(snapshots[0])
        if len(snapshots) > 1:
            twin = copy.deepcopy(self.template)
            for snapshot in snapshots[1:]:
                twin.restore(snapshot)
                merged.merge(twin)
        return merged

    async def estimate(self, items) -> np.ndarray:
        """Batched point estimates answered from the wire-merged state."""
        return (await self.merged()).estimate_batch(items)

    async def query(self, kind: Optional[str] = None):
        """The family's native query from the wire-merged state."""
        merged = await self.merged()
        if kind in (None, "default"):
            return merged.query()
        if kind == "f2":
            return merged.f2_estimate()
        raise ValueError(f"unknown query kind {kind!r}")

    async def stats(self) -> list[dict]:
        """Every server's liveness/monitoring payload, in address order."""
        clients = self._require_clients()
        return list(await asyncio.gather(*(client.stats() for client in clients)))

    async def health(self) -> list[dict]:
        """Ping every server; per-server ``{"address", "ok", ...}`` dicts.

        A failed ping reports ``ok=False`` with the error text instead of
        raising -- health sweeps must degrade, not error.  The result is
        also stored in ``coordinator.server_health`` so a supervisor can
        poll one attribute between sweeps.
        """
        clients = self._require_clients()
        async with self._feed_lock:
            results = await asyncio.gather(
                *(client.ping() for client in clients), return_exceptions=True
            )
        health = []
        for address, result in zip(self.addresses, results):
            entry: dict = {"address": f"{address[0]}:{address[1]}"}
            if isinstance(result, BaseException):
                entry["ok"] = False
                entry["error"] = f"{type(result).__name__}: {result}"
            else:
                entry["ok"] = True
                entry["position"] = result.get("position")
            health.append(entry)
        self.server_health = health
        return health

    # -- recovery: readmission and migration --------------------------------

    async def readmit(self, index: int) -> dict:
        """Reconnect server ``index`` and fold it back into the fleet.

        The recovery mirror of a degraded read: reconnects under the
        coordinator's retry policy *keeping the per-server client
        identity* (so the server-side feed dedup still recognizes this
        coordinator), re-verifies the construction fingerprint (a
        restarted-with-the-wrong-seed server must not rejoin), and --
        when the server came back *empty* (position 0) while the cache
        holds state for it -- pushes the cached snapshot through the
        same ``load_snapshot`` path :meth:`recover` uses and replays the
        journal of slices acknowledged since that snapshot, so the shard
        resumes from its exact acknowledged state.  A server that
        restarted from its own checkpoint (position > 0) keeps its
        richer state untouched.  On success the cache entry is refreshed
        from the server's live state (a readmitted-then-relost server
        must degrade to its *post*-readmission state, not its pre-outage
        bytes).

        A server whose partitions were migrated away rejoins as a
        *standby*: it must come back empty (its state already lives on
        the destination server; re-admitting non-empty state would
        double-count) and receives no cache push and no routing.

        Returns ``{"address", "restored", "position", "standby"}``.
        """
        clients = self._require_clients()
        if not 0 <= index < len(clients):
            raise IndexError(f"server index {index} outside fleet")
        host, port = self.addresses[index]
        async with self._feed_lock:
            old = clients[index]
            await old.close()
            client = await AsyncSketchClient.connect(
                host,
                port,
                retry=self._policy or RetryPolicy(max_attempts=1),
                client_id=old.client_id,
            )
            client._feed_seq = old._feed_seq
            if client.server_info["fingerprint"] != self.fingerprint:
                await client.close()
                raise FingerprintMismatch(
                    f"server {host}:{port} came back differently-constructed; "
                    "refusing to re-admit it into the fleet"
                )
            clients[index] = client
            pong = await client.ping()
            if index in self._migrated:
                if pong.get("position"):
                    raise RuntimeError(
                        f"server {host}:{port} was migrated away but came "
                        "back with state; its shards already live on another "
                        "server, so re-admitting it would double-count -- "
                        "restart it empty to rejoin as a standby"
                    )
                return {
                    "address": f"{host}:{port}",
                    "restored": False,
                    "position": 0,
                    "standby": True,
                }
            restored = False
            if not pong.get("position") and self._snapshots[index] is not None:
                await client.load_snapshot(
                    self._snapshots[index],
                    position=self._snapshot_positions[index],
                )
                for chunk_items, chunk_deltas in self._journals[index]:
                    client._feed_seq += 1
                    await self._send_feed(
                        client, client._feed_seq, chunk_items, chunk_deltas
                    )
                restored = True
            self._snapshots[index] = await client.snapshot()
            self._snapshot_positions[index] = self.position
            self._journals[index].clear()
            pong = await client.ping()
        return {
            "address": f"{host}:{port}",
            "restored": restored,
            "position": pong.get("position"),
            "standby": False,
        }

    def _pick_destination(self, index: int) -> int:
        """Least-loaded surviving server (the default migration target)."""
        candidates = [
            candidate
            for candidate in range(len(self.addresses))
            if candidate != index and candidate not in self._migrated
        ]
        if not candidates:
            raise RuntimeError(
                "no surviving server to migrate to; the fleet is down"
            )
        return min(
            candidates,
            key=lambda candidate: (self.routed_updates[candidate], candidate),
        )

    async def migrate_server(
        self, index: int, destination: Optional[int] = None
    ) -> dict:
        """Move a permanently lost server's shards to a survivor.

        Transfers the coordinator's exact acknowledged record of server
        ``index`` -- cached snapshot (folded into the destination via
        fingerprint-verified ``load_snapshot(merge=True)``) plus journal
        (replayed as sequenced feeds) -- then atomically remaps every
        partition the dead server owned onto ``destination``.  Runs
        under the feed lock, so the swap lands between chunk boundaries
        and in-flight :meth:`feed` retries re-resolve against the new
        owner.  Idempotent: an already-migrated index returns without
        touching anything.

        Slices the dead server applied but never acknowledged are
        deliberately *not* transferred: its engine state is discarded
        whole, and the unacknowledged slices are still pending in their
        feed calls, which replay them against the destination --
        exactly-once either way, byte-identical to a serial engine.

        Returns ``{"migrated", "from", "to", "moved_updates",
        "snapshot_bytes"}``.
        """
        clients = self._require_clients()
        if not 0 <= index < len(clients):
            raise IndexError(f"server index {index} outside fleet")
        async with self._feed_lock:
            if index in self._migrated:
                return {
                    "migrated": False,
                    "from": index,
                    "to": None,
                    "moved_updates": 0,
                    "snapshot_bytes": 0,
                }
            if destination is None:
                destination = self._pick_destination(index)
            if destination == index or destination in self._migrated:
                raise ValueError(
                    f"cannot migrate server {index} onto {destination}"
                )
            if not 0 <= destination < len(clients):
                raise IndexError(
                    f"destination index {destination} outside fleet"
                )
            _obs_migrations_active.add(1)
            try:
                dest = clients[destination]
                snapshot = self._snapshots[index]
                moved = 0
                if snapshot is not None:
                    await dest.load_snapshot(snapshot, merge=True)
                for chunk_items, chunk_deltas in self._journals[index]:
                    dest._feed_seq += 1
                    await self._send_feed(
                        dest, dest._feed_seq, chunk_items, chunk_deltas
                    )
                    moved += int(chunk_items.size)
                self.routing = [
                    destination if owner == index else owner
                    for owner in self.routing
                ]
                self._migrated.add(index)
                self._journals[index] = []
                self._snapshots[index] = None
                self._snapshot_positions[index] = 0
                self.routed_updates[destination] += self.routed_updates[index]
                self.routed_updates[index] = 0
                try:
                    self._snapshots[destination] = await dest.snapshot()
                    self._snapshot_positions[destination] = self.position
                    self._journals[destination].clear()
                except (OSError, ProtocolError):
                    pass  # cache refresh is opportunistic; journal covers it
                self.migrations += 1
                if _obs_registry.enabled:
                    _obs_migrations.add(1)
            finally:
                _obs_migrations_active.add(-1)
            await clients[index].close()
        return {
            "migrated": True,
            "from": index,
            "to": destination,
            "moved_updates": moved,
            "snapshot_bytes": len(snapshot) if snapshot is not None else 0,
        }

    async def metrics(self) -> dict:
        """The whole fleet's telemetry as one merged registry snapshot.

        Gathers every server's ``metrics`` reply and folds the snapshots
        through :func:`repro.obs.merge_snapshots` -- the same
        commutative fan-in each server already applied to its own
        process-backend workers -- then renders one Prometheus
        exposition.  Returns ``{"servers", "snapshot", "exposition",
        "content_type"}``.
        """
        from repro.obs import (
            EXPOSITION_CONTENT_TYPE,
            merge_snapshots,
            render_prometheus,
        )

        clients = self._require_clients()
        async with self._feed_lock:
            replies = await asyncio.gather(
                *(client.metrics() for client in clients)
            )
        snapshot = merge_snapshots([reply["snapshot"] for reply in replies])
        return {
            "servers": [reply["server"] for reply in replies],
            "snapshot": snapshot,
            "exposition": render_prometheus(snapshot),
            "content_type": EXPOSITION_CONTENT_TYPE,
        }

    async def alerts(self) -> dict:
        """The fleet's alert states, merged most-severe-wins.

        Gathers every server's ``alerts`` reply (each server runs one
        evaluation pass) and folds them with
        :func:`repro.obs.alerts.merge_alert_payloads`: per rule, the
        most severe state wins (``firing > pending > resolved >
        inactive``) and the winning server's label is recorded as
        ``source`` -- the fleet pages if any node pages.
        """
        from repro.obs.alerts import merge_alert_payloads

        clients = self._require_clients()
        async with self._feed_lock:
            replies = await asyncio.gather(
                *(client.alerts() for client in clients)
            )
        return merge_alert_payloads(
            replies, sources=[reply.get("server") for reply in replies]
        )

    # -- checkpoint / recovery over the wire --------------------------------

    async def checkpoint(self, path) -> int:
        """Write one standard checkpoint file of the fleet's merged state.

        The file is indistinguishable from a local engine's checkpoint --
        it can resume a single engine, a local sharded fleet, or another
        coordinator fleet of any width.  Returns the recorded position.
        Fail-fast: a checkpoint is never written from a degraded read.
        """
        merged = await self.merged(allow_degraded=False)
        save_checkpoint(
            path,
            merged,
            self.position,
            meta={"servers": len(self.addresses), "source": "coordinator"},
        )
        return self.position

    async def recover(self, path) -> int:
        """Restore a checkpoint into a fresh fleet; returns the position.

        The merged snapshot lands whole in server 0 (the other servers
        stay empty -- exact merging makes that equivalent to the
        uninterrupted deployment).  The caller replays the stream tail
        from the returned position, e.g. via
        :func:`repro.distributed.checkpoint.tail_chunks`.
        """
        clients = self._require_clients()
        checkpoint = load_checkpoint(path)
        await clients[0].load_snapshot(
            checkpoint.snapshot, position=checkpoint.position
        )
        self.position = checkpoint.position
        return self.position
