"""`SketchCoordinator`: universe partitioning across a fleet of servers.

Where :class:`~repro.service.server.SketchServer` scales one host (its
shards share a process pool), the coordinator scales *hosts*: it owns
the :class:`~repro.parallel.partition.UniversePartitioner`, routes each
update batch's per-server slices to the servers owning them, and fans
state back in as wire-format snapshots -- the same
fingerprint-verified ``restore`` / ``merge_snapshot`` payloads the
in-process merge protocol uses, now routed between worker pools over
TCP.  Because every server's fleet is built from the same factory (the
``hello`` handshake proves it: all construction fingerprints must
coincide), the merged result is bit-identical to one engine fed the
whole stream -- the multi-host deployment inherits the single-engine
white-box semantics unchanged.

Checkpoint/recovery rides the same wire: ``checkpoint(path)`` pulls and
merges all server snapshots and writes one standard checkpoint file
(:mod:`repro.distributed.checkpoint`); ``recover(path)`` pushes the
checkpointed merged state into server 0 of a fresh fleet -- merging
being exact, a fleet holding the merged state in one server and nothing
in the others continues exactly like the uninterrupted deployment, and
the caller replays the stream tail from the returned position.

The coordinator is asyncio-native (it multiplexes N server connections
concurrently); wrap calls with :func:`asyncio.run` from sync code.
"""

from __future__ import annotations

import asyncio
import copy
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.algorithm import StreamAlgorithm
from repro.distributed.checkpoint import load_checkpoint, save_checkpoint
from repro.distributed.codec import (
    FingerprintMismatch,
    construction_fingerprint,
)
from repro.parallel.partition import UniversePartitioner
from repro.service.client import AsyncSketchClient

__all__ = ["SketchCoordinator"]


class SketchCoordinator:
    """Routes one logical stream across many sketch servers.

    Parameters
    ----------
    factory:
        The same zero-argument replica factory every server was built
        with; the coordinator keeps one local *template* instance (never
        fed) for fingerprint checks and merge fan-in.
    addresses:
        ``(host, port)`` pairs, one per server; their order defines the
        partition index.
    partitioner:
        Item -> server map; defaults to a seed-0
        :class:`UniversePartitioner` over ``len(addresses)`` parts --
        the same default a :class:`ShardedAlgorithm` of that width uses,
        so a coordinator fleet partitions identically to a local fleet.
    """

    def __init__(
        self,
        factory: Callable[[], StreamAlgorithm],
        addresses: Sequence[tuple[str, int]],
        partitioner: Optional[UniversePartitioner] = None,
    ) -> None:
        if not addresses:
            raise ValueError("coordinator needs at least one server address")
        self.factory = factory
        self.addresses = list(addresses)
        self.partitioner = partitioner or UniversePartitioner(len(self.addresses))
        self.template = factory()
        self.fingerprint = construction_fingerprint(self.template)
        self.clients: list[AsyncSketchClient] = []
        #: Updates routed so far (absolute once ``recover`` seeds it).
        self.position = 0

    # -- lifecycle ----------------------------------------------------------

    async def connect(self, retries: int = 0, retry_interval: float = 0.05) -> "SketchCoordinator":
        """Connect to every server and verify construction identity.

        A server whose ``hello`` fingerprint differs from the local
        template's was built with other parameters or another seed;
        routing updates to it would silently break merge exactness, so
        the handshake raises :class:`FingerprintMismatch` instead.
        """
        if self.clients:
            raise RuntimeError("coordinator already connected")
        self.clients = list(
            await asyncio.gather(
                *(
                    AsyncSketchClient.connect(
                        host, port, retries=retries, retry_interval=retry_interval
                    )
                    for host, port in self.addresses
                )
            )
        )
        for address, client in zip(self.addresses, self.clients):
            fingerprint = client.server_info["fingerprint"]
            if fingerprint != self.fingerprint:
                await self.close()
                raise FingerprintMismatch(
                    f"server {address[0]}:{address[1]} holds a differently-"
                    "constructed sketch; every server must be built from the "
                    "coordinator's factory (same parameters, same seed)"
                )
        return self

    async def close(self) -> None:
        """Close every server connection (idempotent)."""
        clients, self.clients = self.clients, []
        for client in clients:
            await client.close()

    async def __aenter__(self) -> "SketchCoordinator":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _require_clients(self) -> list[AsyncSketchClient]:
        if not self.clients:
            raise RuntimeError("coordinator is not connected (call connect())")
        return self.clients

    # -- routing ------------------------------------------------------------

    async def feed(self, items, deltas) -> int:
        """Partition one batch and feed every server its slice, concurrently.

        Returns the coordinator's stream position after the batch.  The
        per-server slices preserve stream order (the partitioner's
        counting sort is stable), so each server sees exactly the
        sub-stream of its items -- the distributed mirror of
        ``ShardedAlgorithm.process_batch``.
        """
        clients = self._require_clients()
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if items.size:
            parts = self.partitioner.split(items, deltas)
            await asyncio.gather(
                *(
                    client.feed(part[0], part[1])
                    for client, part in zip(clients, parts)
                    if part is not None and len(part[0])
                )
            )
            self.position += int(items.size)
        return self.position

    async def feed_chunks(self, source) -> int:
        """Drive a sync iterable of ``(items, deltas)`` chunks through
        :meth:`feed`; returns the final position."""
        for items, deltas in source:
            await self.feed(items, deltas)
        return self.position

    # -- fan-in: the wire merge --------------------------------------------

    async def merged(self) -> StreamAlgorithm:
        """One sketch equal to a single engine fed the whole stream.

        Pulls every server's merged snapshot concurrently and folds them
        into a deep copy of the local template -- ``restore`` for the
        first payload, fingerprint-verified merges for the rest, exactly
        the :meth:`ShardedAlgorithm.merged` fan-in with TCP in the
        middle.
        """
        clients = self._require_clients()
        snapshots = await asyncio.gather(
            *(client.snapshot() for client in clients)
        )
        merged = copy.deepcopy(self.template)
        merged.restore(snapshots[0])
        if len(snapshots) > 1:
            twin = copy.deepcopy(self.template)
            for snapshot in snapshots[1:]:
                twin.restore(snapshot)
                merged.merge(twin)
        return merged

    async def estimate(self, items) -> np.ndarray:
        """Batched point estimates answered from the wire-merged state."""
        return (await self.merged()).estimate_batch(items)

    async def query(self, kind: Optional[str] = None):
        """The family's native query from the wire-merged state."""
        merged = await self.merged()
        if kind in (None, "default"):
            return merged.query()
        if kind == "f2":
            return merged.f2_estimate()
        raise ValueError(f"unknown query kind {kind!r}")

    async def stats(self) -> list[dict]:
        """Every server's liveness/monitoring payload, in address order."""
        clients = self._require_clients()
        return list(await asyncio.gather(*(client.stats() for client in clients)))

    async def metrics(self) -> dict:
        """The whole fleet's telemetry as one merged registry snapshot.

        Gathers every server's ``metrics`` reply and folds the snapshots
        through :func:`repro.obs.merge_snapshots` -- the same
        commutative fan-in each server already applied to its own
        process-backend workers -- then renders one Prometheus
        exposition.  Returns ``{"servers", "snapshot", "exposition",
        "content_type"}``.
        """
        from repro.obs import (
            EXPOSITION_CONTENT_TYPE,
            merge_snapshots,
            render_prometheus,
        )

        clients = self._require_clients()
        replies = await asyncio.gather(
            *(client.metrics() for client in clients)
        )
        snapshot = merge_snapshots([reply["snapshot"] for reply in replies])
        return {
            "servers": [reply["server"] for reply in replies],
            "snapshot": snapshot,
            "exposition": render_prometheus(snapshot),
            "content_type": EXPOSITION_CONTENT_TYPE,
        }

    async def alerts(self) -> dict:
        """The fleet's alert states, merged most-severe-wins.

        Gathers every server's ``alerts`` reply (each server runs one
        evaluation pass) and folds them with
        :func:`repro.obs.alerts.merge_alert_payloads`: per rule, the
        most severe state wins (``firing > pending > resolved >
        inactive``) and the winning server's label is recorded as
        ``source`` -- the fleet pages if any node pages.
        """
        from repro.obs.alerts import merge_alert_payloads

        clients = self._require_clients()
        replies = await asyncio.gather(
            *(client.alerts() for client in clients)
        )
        return merge_alert_payloads(
            replies, sources=[reply.get("server") for reply in replies]
        )

    # -- checkpoint / recovery over the wire --------------------------------

    async def checkpoint(self, path) -> int:
        """Write one standard checkpoint file of the fleet's merged state.

        The file is indistinguishable from a local engine's checkpoint --
        it can resume a single engine, a local sharded fleet, or another
        coordinator fleet of any width.  Returns the recorded position.
        """
        merged = await self.merged()
        save_checkpoint(
            path,
            merged,
            self.position,
            meta={"servers": len(self.addresses), "source": "coordinator"},
        )
        return self.position

    async def recover(self, path) -> int:
        """Restore a checkpoint into a fresh fleet; returns the position.

        The merged snapshot lands whole in server 0 (the other servers
        stay empty -- exact merging makes that equivalent to the
        uninterrupted deployment).  The caller replays the stream tail
        from the returned position, e.g. via
        :func:`repro.distributed.checkpoint.tail_chunks`.
        """
        clients = self._require_clients()
        checkpoint = load_checkpoint(path)
        await clients[0].load_snapshot(
            checkpoint.snapshot, position=checkpoint.position
        )
        self.position = checkpoint.position
        return self.position
