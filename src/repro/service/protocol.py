"""The sketch service wire protocol: one message schema for every party.

Design
------
Client, server, and coordinator all speak the same length-prefixed frame
format carrying one *message* per frame -- a plain dict with an ``"op"``
key -- encoded with the deterministic value codec the snapshot wire
format already trusts (:func:`repro.distributed.codec.encode_value`).
Reusing that codec means update batches travel as raw little-endian
int64 array bytes (no per-element Python marshalling on the hot path),
big ints survive exactly, and a sketch snapshot is just a ``bytes``
field inside a message -- the construction-fingerprint checks of
:mod:`repro.distributed.codec` keep guarding every snapshot that moves
over a socket, unchanged.

Frame layout::

    MAGIC "RSV1" | u32 payload length (big-endian) | payload =
        encode_value(message dict)

A frame that fails any structural check -- bad magic, a length above the
negotiated cap, truncated payload, a payload that does not decode to a
dict with a string ``"op"`` -- raises :class:`ProtocolError`; framing
errors are not recoverable mid-stream, so peers close the connection.
Application-level failures (an unknown op, a sketch rejecting an update,
a fingerprint mismatch on a snapshot) travel *inside* the protocol as
error replies and leave the connection usable.

Requests carry a client-assigned ``"id"`` echoed in the reply, so
clients may pipeline many requests before draining acknowledgements --
the server processes each connection's requests in FIFO order.

Ops
---
``hello``            server identity, API version, sketch class +
                     construction fingerprint, fleet shape
``feed``             one ``(items, deltas)`` int64 update batch;
                     optional ``client`` (opaque id) + ``seq``
                     (contiguous per-client counter) make it
                     exactly-once under reconnect-and-replay: a
                     duplicate seq acks without re-applying, a gap is
                     rejected with :class:`SequenceGap` before the
                     engine sees it
``estimate``         batched point queries (``items`` int64 array)
``query``            the sketch family's native query (``kind="f2"``
                     routes to ``f2_estimate``; default heavy-hitter /
                     family query)
``snapshot``         wire-format snapshot of the merged state
``load_snapshot``    restore a snapshot into the fleet (recovery)
``checkpoint``       force a checkpoint write now
``stats`` / ``ping`` liveness + operational monitoring counters
``metrics``          obs-registry snapshot + Prometheus exposition text
                     (fleet-merged telemetry; see :mod:`repro.obs`)
``alerts``           current alert-rule states from the server's
                     :class:`~repro.obs.alerts.AlertEngine` (evaluated
                     on request; empty when no engine is attached) --
                     the coordinator merges these into the fleet view
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Optional

import numpy as np

from repro.distributed.codec import (
    FingerprintMismatch,
    SnapshotError,
    decode_value,
    encode_value,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "ProtocolError",
    "SequenceGap",
    "ServerBusy",
    "ServiceError",
    "pack_message",
    "unpack_message",
    "read_message",
    "write_message",
    "recv_message",
    "send_message",
    "make_request",
    "make_reply",
    "make_error_reply",
    "raise_for_reply",
    "pack_array",
    "unpack_array",
    "sanitize_value",
]

MAGIC = b"RSV1"
PROTOCOL_VERSION = 1

#: Frames above this are rejected before any allocation happens.  Large
#: enough for multi-megabyte update batches and merged SIS snapshots,
#: small enough that a corrupt length prefix cannot demand gigabytes.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sI")

#: Ops a server accepts (everything else is an application-level error).
REQUEST_OPS = frozenset(
    {
        "hello",
        "feed",
        "estimate",
        "query",
        "snapshot",
        "load_snapshot",
        "checkpoint",
        "stats",
        "ping",
        "metrics",
        "alerts",
    }
)


class ProtocolError(ValueError):
    """A frame is structurally invalid; the connection cannot continue."""


class ServiceError(RuntimeError):
    """A well-formed request failed on the server.

    Carries the server-side exception class name in ``kind`` so clients
    can distinguish e.g. a fingerprint rejection from a bad op.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ServerBusy(ServiceError):
    """The server shed this request: its engine queue stayed saturated
    past the configured queue deadline.  Retryable by construction --
    the request was rejected *before* touching the engine, so resending
    it later is safe (and sequenced feeds stay exactly-once)."""

    def __init__(self, message: str) -> None:
        RuntimeError.__init__(self, message)
        self.kind = "ServerBusy"


class SequenceGap(ServiceError):
    """A sequenced feed skipped ahead of the server's contiguity window.

    The server applies each client's feeds in contiguous ``seq`` order:
    a gap means an earlier feed failed (shed, or lost with its
    connection) while a later one arrived.  Rejecting the later one --
    again before the engine -- keeps every client's failure set a
    contiguous suffix, which is what makes retransmit-all-pending
    exactly-once.
    """

    def __init__(self, message: str) -> None:
        RuntimeError.__init__(self, message)
        self.kind = "SequenceGap"


# -- framing -----------------------------------------------------------------


def pack_message(message: dict) -> bytes:
    """One message dict -> one wire frame."""
    if not isinstance(message, dict) or not isinstance(message.get("op"), str):
        raise ProtocolError("message must be a dict with a string 'op'")
    payload = encode_value(message)
    return _HEADER.pack(MAGIC, len(payload)) + payload


def unpack_message(payload: bytes) -> dict:
    """Decode one frame payload back into a message dict, validated."""
    try:
        message = decode_value(payload)
    except SnapshotError as exc:
        raise ProtocolError(f"frame payload does not decode: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("op"), str):
        raise ProtocolError("frame payload is not a message dict")
    return message


def _check_header(header: bytes, max_frame: int) -> int:
    if len(header) < _HEADER.size:
        raise ProtocolError("truncated frame header")
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte cap"
        )
    return length


async def read_message(reader, max_frame: int = DEFAULT_MAX_FRAME) -> Optional[dict]:
    """Read one message from an asyncio stream reader.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on anything malformed (including EOF inside a
    frame).
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from None
    length = _check_header(header, max_frame)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a frame payload") from None
    return unpack_message(payload)


async def write_message(writer, message: dict) -> None:
    """Write one message to an asyncio stream writer and drain."""
    writer.write(pack_message(message))
    await writer.drain()


def _recv_exact(sock, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                "connection closed mid-frame"
                if len(chunks) or remaining != count
                else "connection closed"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock, max_frame: int = DEFAULT_MAX_FRAME) -> dict:
    """Blocking-socket counterpart of :func:`read_message`."""
    length = _check_header(_recv_exact(sock, _HEADER.size), max_frame)
    return unpack_message(_recv_exact(sock, length))


def send_message(sock, message: dict) -> None:
    """Blocking-socket counterpart of :func:`write_message`."""
    sock.sendall(pack_message(message))


# -- message constructors ----------------------------------------------------


def make_request(op: str, request_id: int, **fields: Any) -> dict:
    """A request message (``op`` + echoed ``id`` + op-specific fields)."""
    message = {"op": op, "id": int(request_id)}
    message.update(fields)
    return message


def make_reply(request_id: Any, result: Any) -> dict:
    """A success reply echoing the request id."""
    return {"op": "reply", "id": request_id, "ok": True, "result": result}


def make_error_reply(request_id: Any, exc: BaseException) -> dict:
    """A failure reply carrying the exception class name and message."""
    return {
        "op": "reply",
        "id": request_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }


def raise_for_reply(message: dict, request_id: int) -> Any:
    """Validate a reply and return its result, re-raising server errors.

    Fingerprint rejections come back as
    :class:`~repro.distributed.codec.FingerprintMismatch` (and malformed
    snapshots as :class:`~repro.distributed.codec.SnapshotError`) so
    callers handle wire rejections exactly like local ones; everything
    else raises :class:`ServiceError`.
    """
    if message.get("op") != "reply":
        raise ProtocolError(f"expected a reply, got op {message.get('op')!r}")
    if message.get("id") != request_id:
        raise ProtocolError(
            f"reply id {message.get('id')!r} does not match request "
            f"{request_id} (stream desynchronized)"
        )
    if message.get("ok"):
        return message.get("result")
    kind = str(message.get("error", "ServiceError"))
    text = str(message.get("message", ""))
    if kind == "FingerprintMismatch":
        raise FingerprintMismatch(text)
    if kind == "SnapshotError":
        raise SnapshotError(text)
    if kind == "ServerBusy":
        raise ServerBusy(text)
    if kind == "SequenceGap":
        raise SequenceGap(text)
    raise ServiceError(kind, text)


# -- value helpers -----------------------------------------------------------


def pack_array(array: np.ndarray) -> dict:
    """An estimate-result array as codec-friendly exact bytes.

    int64 arrays ride the codec's native ndarray tag; float64 arrays
    (CountSketch/AMS estimates) travel as raw little-endian IEEE bytes --
    bit-identical either way.
    """
    array = np.asarray(array)
    if array.dtype == np.int64:
        return {"kind": "i8", "data": array}
    if array.dtype == np.float64:
        return {
            "kind": "f8",
            "data": np.ascontiguousarray(array, dtype="<f8").tobytes(),
            "length": int(array.size),
        }
    raise ProtocolError(f"unsupported estimate dtype {array.dtype}")


def unpack_array(packed: Any) -> np.ndarray:
    """Inverse of :func:`pack_array`."""
    if not isinstance(packed, dict) or "kind" not in packed:
        raise ProtocolError("malformed packed array")
    if packed["kind"] == "i8":
        data = packed["data"]
        if not isinstance(data, np.ndarray) or data.dtype != np.int64:
            raise ProtocolError("packed i8 array carries no int64 data")
        return data
    if packed["kind"] == "f8":
        return np.frombuffer(packed["data"], dtype="<f8").astype(
            np.float64, copy=True
        )[: packed.get("length")]
    raise ProtocolError(f"unknown packed-array kind {packed['kind']!r}")


def sanitize_value(value: Any) -> Any:
    """Fold numpy scalars/arrays into codec-encodable plain values.

    Query answers (heavy-hitter dicts, float F2 estimates, int L0
    counts) may carry numpy scalar types; the codec only speaks plain
    Python values plus int64/object ndarrays.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        if value.dtype == np.int64 or value.dtype == object:
            return value
        return pack_array(value)
    if isinstance(value, dict):
        return {sanitize_value(k): sanitize_value(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(sanitize_value(v) for v in value)
    if isinstance(value, list):
        return [sanitize_value(v) for v in value]
    return value
