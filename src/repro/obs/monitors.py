"""Operational bias monitors: estimate-drift and interaction-budget alarms.

The paper's subject is adversaries that *learn* a sketch's randomness by
interacting with it; operationally that means two signals stop being
debug niceties and become alarms:

* **estimate drift** -- a white-box attack that has locked onto the
  sketch's randomness shows up as the per-round probe estimates lurching
  between checkpoints (e.g. a kernel vector zeroing a SIS chunk, or a
  CountMin heavy-hitter estimate collapsing).  The
  :class:`EstimateDriftMonitor` watches the batched per-checkpoint probe
  vectors games already record (``GameResult.checkpoint_estimates``) and
  raises when the relative sup-norm step between consecutive checkpoints
  exceeds a threshold;
* **interaction budget** -- robustness guarantees are stated against a
  bounded number of adversary interactions, so a deployment should alarm
  *before* the bound is spent.  The :class:`InteractionBudgetMonitor`
  accumulates interaction counts (game rounds plus per-checkpoint probe
  answers) and raises a warning at a configurable fraction of the budget
  and a breach alarm past it;
* **shard skew** -- an adversary that has learned the universe
  partition can aim its stream at one shard, overloading a single
  worker while the fleet looks healthy in aggregate.  The
  :class:`ShardSkewMonitor` watches the cumulative per-shard
  ``repro_partition_shard_updates_total{shard=...}`` counters the
  sharded engines maintain, computes the peak-to-mean update ratio over
  each observation window, publishes it as the
  ``repro_partition_shard_skew`` gauge, and raises when the ratio
  exceeds a threshold.  It is the detector half of live re-sharding:
  the alarm says *which* imbalance to re-shard away.

Alarms are structured (:class:`Alarm`), kept on the monitor, optionally
forwarded to an ``on_alarm`` callback, and counted in the metrics
registry (``repro_monitor_alarms_total{monitor=...,kind=...}``), so a
fleet's merged exposition shows alarm counts next to the throughput
counters they contextualize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "Alarm",
    "EstimateDriftMonitor",
    "InteractionBudgetMonitor",
    "SHARD_SKEW_METRIC",
    "SHARD_UPDATES_METRIC",
    "ShardSkewMonitor",
]

#: Cumulative per-shard update counter the sharded engines maintain
#: (labelled ``shard="<index>"``; counted parent-side, post-partition).
SHARD_UPDATES_METRIC = "repro_partition_shard_updates_total"

#: Gauge the skew monitor publishes: peak-to-mean per-shard update ratio
#: over the last observation window (1.0 = perfectly balanced).
SHARD_SKEW_METRIC = "repro_partition_shard_skew"


@dataclass(frozen=True)
class Alarm:
    """One structured alarm raised by a monitor."""

    monitor: str
    kind: str
    round_index: int
    value: float
    threshold: float
    message: str


class _MonitorBase:
    """Alarm bookkeeping shared by the concrete monitors."""

    def __init__(
        self,
        name: str,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.on_alarm = on_alarm
        self.alarms: list[Alarm] = []
        self._alarm_counter = (registry or get_registry()).counter(
            "repro_monitor_alarms_total",
            "Structured alarms raised by obs monitors",
        )

    def _raise_alarm(
        self, kind: str, round_index: int, value: float, threshold: float,
        message: str,
    ) -> Alarm:
        alarm = Alarm(self.name, kind, round_index, value, threshold, message)
        self.alarms.append(alarm)
        self._alarm_counter.add(1, monitor=self.name, kind=kind)
        if self.on_alarm is not None:
            self.on_alarm(alarm)
        return alarm


class EstimateDriftMonitor(_MonitorBase):
    """Alarms when per-round probe estimates lurch between checkpoints.

    Parameters
    ----------
    max_drift:
        Relative sup-norm threshold: with consecutive checkpoint
        estimate vectors ``prev`` and ``cur``, the drift is
        ``max_i |cur_i - prev_i| / max(|prev_i|, 1)`` -- the ``1`` floor
        keeps zero/near-zero baselines from dividing away small absolute
        steps.  A drift strictly above ``max_drift`` raises one
        ``"estimate_drift"`` alarm for that checkpoint.
    """

    def __init__(
        self,
        max_drift: float,
        *,
        name: str = "estimate-drift",
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_drift < 0:
            raise ValueError(f"max_drift must be non-negative, got {max_drift}")
        super().__init__(name, on_alarm=on_alarm, registry=registry)
        self.max_drift = float(max_drift)
        self._previous: Optional[np.ndarray] = None

    def observe_checkpoint(self, round_index: int, estimates) -> list[Alarm]:
        """Feed one checkpoint's probe estimate vector; returns new alarms."""
        current = np.asarray(estimates, dtype=np.float64)
        raised: list[Alarm] = []
        previous = self._previous
        if (
            previous is not None
            and previous.shape == current.shape
            and current.size
        ):
            denom = np.maximum(np.abs(previous), 1.0)
            drift = float(np.max(np.abs(current - previous) / denom))
            if drift > self.max_drift:
                raised.append(
                    self._raise_alarm(
                        "estimate_drift",
                        round_index,
                        drift,
                        self.max_drift,
                        f"estimate drift {drift:.4g} exceeds "
                        f"{self.max_drift:.4g} at round {round_index}",
                    )
                )
        self._previous = current
        return raised

    def observe_result(self, result) -> list[Alarm]:
        """Replay every checkpoint of one ``GameResult`` through the
        monitor (uses ``checkpoint_rounds`` / ``checkpoint_estimates``)."""
        raised: list[Alarm] = []
        for round_index, estimates in zip(
            result.checkpoint_rounds, result.checkpoint_estimates
        ):
            raised.extend(self.observe_checkpoint(int(round_index), estimates))
        return raised

    def reset(self) -> None:
        """Forget the drift baseline (alarms are retained)."""
        self._previous = None


class InteractionBudgetMonitor(_MonitorBase):
    """Alarms as cumulative adversary interactions approach a budget.

    Parameters
    ----------
    budget:
        Interaction bound the deployment's robustness guarantee assumes.
    warn_fraction:
        Fraction of ``budget`` at which a single ``"budget_warning"``
        alarm fires (default 0.8); crossing the budget itself raises a
        single ``"budget_exceeded"`` alarm.
    """

    def __init__(
        self,
        budget: int,
        warn_fraction: float = 0.8,
        *,
        name: str = "interaction-budget",
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if not 0.0 < warn_fraction <= 1.0:
            raise ValueError(
                f"warn_fraction must be in (0, 1], got {warn_fraction}"
            )
        super().__init__(name, on_alarm=on_alarm, registry=registry)
        self.budget = int(budget)
        self.warn_fraction = float(warn_fraction)
        self.interactions = 0
        self._warned = False
        self._breached = False

    def observe(self, interactions: int, round_index: int = 0) -> list[Alarm]:
        """Add ``interactions`` to the running total; returns new alarms."""
        if interactions < 0:
            raise ValueError(
                f"interactions must be non-negative, got {interactions}"
            )
        self.interactions += int(interactions)
        raised: list[Alarm] = []
        if not self._breached and self.interactions > self.budget:
            self._breached = True
            raised.append(
                self._raise_alarm(
                    "budget_exceeded",
                    round_index,
                    float(self.interactions),
                    float(self.budget),
                    f"interaction budget exceeded: {self.interactions} > "
                    f"{self.budget}",
                )
            )
        elif (
            not self._warned
            and self.interactions > self.warn_fraction * self.budget
        ):
            self._warned = True
            raised.append(
                self._raise_alarm(
                    "budget_warning",
                    round_index,
                    float(self.interactions),
                    self.warn_fraction * self.budget,
                    f"interactions at {self.interactions} of budget "
                    f"{self.budget} (warn fraction {self.warn_fraction})",
                )
            )
        return raised

    def observe_result(self, result) -> list[Alarm]:
        """Account one ``GameResult``: every round is an interaction, and
        every recorded checkpoint estimate is one probe answer handed to
        the adversary."""
        probes = sum(
            len(np.atleast_1d(estimates))
            for estimates in result.checkpoint_estimates
        )
        return self.observe(
            int(result.rounds_played) + int(probes),
            round_index=int(result.rounds_played),
        )


class ShardSkewMonitor(_MonitorBase):
    """Alarms when per-shard update traffic concentrates on few shards.

    Feeds on registry *snapshots* (local or fleet-merged): each
    :meth:`observe_snapshot` call diffs the cumulative
    ``repro_partition_shard_updates_total`` series against the previous
    call, giving a window of per-shard update deltas.  The skew ratio is
    ``max(delta) / mean(delta)`` -- 1.0 for a perfectly balanced window,
    ``num_shards`` when every update hit one shard.  The ratio is
    published as the ``repro_partition_shard_skew`` gauge and kept on
    :attr:`ratio`; windows smaller than ``min_window`` total updates are
    skipped *without* clearing the last ratio, so hold-duration alert
    rules see a stable value between sparse scrapes instead of flapping.

    Parameters
    ----------
    max_ratio:
        Peak-to-mean ratio above which a ``"shard_skew"`` alarm is
        raised for the window (must be >= 1).
    min_window:
        Minimum total updates a window needs before the ratio is
        recomputed (guards against noise in near-idle windows).
    num_shards:
        Shard count to average over.  When given, shards that received
        *zero* traffic in the window still dilute the mean -- an
        adversary hammering shard 0 of 8 then scores 8.0 even if the
        other seven series have not appeared in the snapshot yet.
        Defaults to the number of shard series observed.
    """

    def __init__(
        self,
        max_ratio: float,
        *,
        min_window: int = 1,
        num_shards: Optional[int] = None,
        name: str = "shard-skew",
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_ratio < 1.0:
            raise ValueError(f"max_ratio must be >= 1, got {max_ratio}")
        if min_window <= 0:
            raise ValueError(f"min_window must be positive, got {min_window}")
        if num_shards is not None and num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        super().__init__(name, on_alarm=on_alarm, registry=registry)
        self.max_ratio = float(max_ratio)
        self.min_window = int(min_window)
        self.num_shards = None if num_shards is None else int(num_shards)
        #: Last computed peak-to-mean ratio (sticky across thin windows).
        self.ratio = 0.0
        self._gauge = (registry or get_registry()).gauge(
            SHARD_SKEW_METRIC,
            "Peak-to-mean per-shard update ratio over the last window",
        )
        self._last_totals: dict[str, float] = {}
        self._windows = 0

    def observe_snapshot(self, snapshot: dict) -> list[Alarm]:
        """Diff one registry snapshot against the last; returns new alarms."""
        data = snapshot.get("counters", {}).get(SHARD_UPDATES_METRIC)
        totals = dict(data["values"]) if data else {}
        previous = self._last_totals
        deltas = [
            totals[key] - previous.get(key, 0) for key in totals
        ]
        self._last_totals = totals
        self._windows += 1
        window_total = sum(deltas)
        if window_total < self.min_window:
            return []
        shard_count = max(len(deltas), self.num_shards or 0)
        mean = window_total / shard_count
        ratio = max(deltas) / mean if mean > 0 else 0.0
        self.ratio = float(ratio)
        self._gauge.set(self.ratio)
        if self.ratio > self.max_ratio:
            return [
                self._raise_alarm(
                    "shard_skew",
                    self._windows,
                    self.ratio,
                    self.max_ratio,
                    f"shard skew ratio {self.ratio:.4g} exceeds "
                    f"{self.max_ratio:.4g} over {int(window_total)} updates",
                )
            ]
        return []

    def derived_metrics(self) -> dict:
        """Values alert rules can reference by metric name."""
        return {SHARD_SKEW_METRIC: self.ratio}

    def reset(self) -> None:
        """Forget the diff baseline and ratio (alarms are retained)."""
        self._last_totals = {}
        self.ratio = 0.0
        self._windows = 0
