"""Operational bias monitors: estimate-drift and interaction-budget alarms.

The paper's subject is adversaries that *learn* a sketch's randomness by
interacting with it; operationally that means two signals stop being
debug niceties and become alarms:

* **estimate drift** -- a white-box attack that has locked onto the
  sketch's randomness shows up as the per-round probe estimates lurching
  between checkpoints (e.g. a kernel vector zeroing a SIS chunk, or a
  CountMin heavy-hitter estimate collapsing).  The
  :class:`EstimateDriftMonitor` watches the batched per-checkpoint probe
  vectors games already record (``GameResult.checkpoint_estimates``) and
  raises when the relative sup-norm step between consecutive checkpoints
  exceeds a threshold;
* **interaction budget** -- robustness guarantees are stated against a
  bounded number of adversary interactions, so a deployment should alarm
  *before* the bound is spent.  The :class:`InteractionBudgetMonitor`
  accumulates interaction counts (game rounds plus per-checkpoint probe
  answers) and raises a warning at a configurable fraction of the budget
  and a breach alarm past it.

Alarms are structured (:class:`Alarm`), kept on the monitor, optionally
forwarded to an ``on_alarm`` callback, and counted in the metrics
registry (``repro_monitor_alarms_total{monitor=...,kind=...}``), so a
fleet's merged exposition shows alarm counts next to the throughput
counters they contextualize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["Alarm", "EstimateDriftMonitor", "InteractionBudgetMonitor"]


@dataclass(frozen=True)
class Alarm:
    """One structured alarm raised by a monitor."""

    monitor: str
    kind: str
    round_index: int
    value: float
    threshold: float
    message: str


class _MonitorBase:
    """Alarm bookkeeping shared by the concrete monitors."""

    def __init__(
        self,
        name: str,
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.on_alarm = on_alarm
        self.alarms: list[Alarm] = []
        self._alarm_counter = (registry or get_registry()).counter(
            "repro_monitor_alarms_total",
            "Structured alarms raised by obs monitors",
        )

    def _raise_alarm(
        self, kind: str, round_index: int, value: float, threshold: float,
        message: str,
    ) -> Alarm:
        alarm = Alarm(self.name, kind, round_index, value, threshold, message)
        self.alarms.append(alarm)
        self._alarm_counter.add(1, monitor=self.name, kind=kind)
        if self.on_alarm is not None:
            self.on_alarm(alarm)
        return alarm


class EstimateDriftMonitor(_MonitorBase):
    """Alarms when per-round probe estimates lurch between checkpoints.

    Parameters
    ----------
    max_drift:
        Relative sup-norm threshold: with consecutive checkpoint
        estimate vectors ``prev`` and ``cur``, the drift is
        ``max_i |cur_i - prev_i| / max(|prev_i|, 1)`` -- the ``1`` floor
        keeps zero/near-zero baselines from dividing away small absolute
        steps.  A drift strictly above ``max_drift`` raises one
        ``"estimate_drift"`` alarm for that checkpoint.
    """

    def __init__(
        self,
        max_drift: float,
        *,
        name: str = "estimate-drift",
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_drift < 0:
            raise ValueError(f"max_drift must be non-negative, got {max_drift}")
        super().__init__(name, on_alarm=on_alarm, registry=registry)
        self.max_drift = float(max_drift)
        self._previous: Optional[np.ndarray] = None

    def observe_checkpoint(self, round_index: int, estimates) -> list[Alarm]:
        """Feed one checkpoint's probe estimate vector; returns new alarms."""
        current = np.asarray(estimates, dtype=np.float64)
        raised: list[Alarm] = []
        previous = self._previous
        if (
            previous is not None
            and previous.shape == current.shape
            and current.size
        ):
            denom = np.maximum(np.abs(previous), 1.0)
            drift = float(np.max(np.abs(current - previous) / denom))
            if drift > self.max_drift:
                raised.append(
                    self._raise_alarm(
                        "estimate_drift",
                        round_index,
                        drift,
                        self.max_drift,
                        f"estimate drift {drift:.4g} exceeds "
                        f"{self.max_drift:.4g} at round {round_index}",
                    )
                )
        self._previous = current
        return raised

    def observe_result(self, result) -> list[Alarm]:
        """Replay every checkpoint of one ``GameResult`` through the
        monitor (uses ``checkpoint_rounds`` / ``checkpoint_estimates``)."""
        raised: list[Alarm] = []
        for round_index, estimates in zip(
            result.checkpoint_rounds, result.checkpoint_estimates
        ):
            raised.extend(self.observe_checkpoint(int(round_index), estimates))
        return raised

    def reset(self) -> None:
        """Forget the drift baseline (alarms are retained)."""
        self._previous = None


class InteractionBudgetMonitor(_MonitorBase):
    """Alarms as cumulative adversary interactions approach a budget.

    Parameters
    ----------
    budget:
        Interaction bound the deployment's robustness guarantee assumes.
    warn_fraction:
        Fraction of ``budget`` at which a single ``"budget_warning"``
        alarm fires (default 0.8); crossing the budget itself raises a
        single ``"budget_exceeded"`` alarm.
    """

    def __init__(
        self,
        budget: int,
        warn_fraction: float = 0.8,
        *,
        name: str = "interaction-budget",
        on_alarm: Optional[Callable[[Alarm], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if not 0.0 < warn_fraction <= 1.0:
            raise ValueError(
                f"warn_fraction must be in (0, 1], got {warn_fraction}"
            )
        super().__init__(name, on_alarm=on_alarm, registry=registry)
        self.budget = int(budget)
        self.warn_fraction = float(warn_fraction)
        self.interactions = 0
        self._warned = False
        self._breached = False

    def observe(self, interactions: int, round_index: int = 0) -> list[Alarm]:
        """Add ``interactions`` to the running total; returns new alarms."""
        if interactions < 0:
            raise ValueError(
                f"interactions must be non-negative, got {interactions}"
            )
        self.interactions += int(interactions)
        raised: list[Alarm] = []
        if not self._breached and self.interactions > self.budget:
            self._breached = True
            raised.append(
                self._raise_alarm(
                    "budget_exceeded",
                    round_index,
                    float(self.interactions),
                    float(self.budget),
                    f"interaction budget exceeded: {self.interactions} > "
                    f"{self.budget}",
                )
            )
        elif (
            not self._warned
            and self.interactions > self.warn_fraction * self.budget
        ):
            self._warned = True
            raised.append(
                self._raise_alarm(
                    "budget_warning",
                    round_index,
                    float(self.interactions),
                    self.warn_fraction * self.budget,
                    f"interactions at {self.interactions} of budget "
                    f"{self.budget} (warn fraction {self.warn_fraction})",
                )
            )
        return raised

    def observe_result(self, result) -> list[Alarm]:
        """Account one ``GameResult``: every round is an interaction, and
        every recorded checkpoint estimate is one probe answer handed to
        the adversary."""
        probes = sum(
            len(np.atleast_1d(estimates))
            for estimates in result.checkpoint_estimates
        )
        return self.observe(
            int(result.rounds_played) + int(probes),
            round_index=int(result.rounds_played),
        )
