"""Declarative alerting over registry snapshots and bias monitors.

Monitors (:mod:`repro.obs.monitors`) detect conditions; this module
decides when a condition becomes a *page*.  An :class:`AlertEngine`
holds declarative rules -- :class:`ThresholdRule` (value vs bound),
:class:`RateRule` (per-second change between evaluations vs bound), and
:class:`AbsenceRule` (metric stopped appearing) -- and evaluates them
against registry snapshots, running any attached monitors'
``observe_snapshot`` first so monitor-derived signals (e.g. the shard
skew ratio) are in scope for the same evaluation.

Each rule carries a Prometheus-style ``for_seconds`` hold: a true
condition moves the rule ``inactive -> pending``, and only a condition
that *stays* true for the hold duration promotes it ``pending ->
firing``; a cleared condition takes ``firing -> resolved`` (and a
pending that never fired quietly back to ``inactive``).  All timing
flows through an injectable ``clock`` callable, so state transitions are
deterministic under test -- no sleeps, no wall-clock flakes.

State is fleet-mergeable like everything else in ``repro.obs``: the
JSON payload one engine serves on ``/alerts`` (or over the ``alerts``
service op) folds with :func:`merge_alert_payloads` -- per-rule, the
most severe state wins (``firing > pending > resolved > inactive``) and
the winning node is recorded -- so the coordinator's fleet view pages if
*any* node pages.  Transitions are also counted in the metrics registry
(``repro_alert_transitions_total{rule=...,state=...}``), putting alert
history next to the counters that triggered it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.obs.expo import format_label_pairs
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "AbsenceRule",
    "AlertEngine",
    "AlertState",
    "CLIENT_RETRIES_METRIC",
    "DEGRADED_READS_METRIC",
    "HEDGED_READS_METRIC",
    "MEMBERSHIP_METRIC",
    "MIGRATIONS_ACTIVE_METRIC",
    "RateRule",
    "SHARD_MIGRATIONS_METRIC",
    "ThresholdRule",
    "WORKER_RESTARTS_METRIC",
    "default_fault_rules",
    "default_membership_rules",
    "merge_alert_payloads",
]

#: Counter tracking every alert state transition.
ALERT_TRANSITIONS_METRIC = "repro_alert_transitions_total"

#: Fault-tolerance counters, named here (the lowest layer that both the
#: producers -- the process pool, the service clients, the coordinator --
#: and the default rules can import without a cycle).
WORKER_RESTARTS_METRIC = "repro_worker_restarts_total"
CLIENT_RETRIES_METRIC = "repro_client_retries_total"
DEGRADED_READS_METRIC = "repro_coordinator_degraded_reads_total"

#: Self-healing fleet instruments (producers: the membership prober,
#: the coordinator's migration path, and the hedging clients).
MEMBERSHIP_METRIC = "repro_fleet_membership"
SHARD_MIGRATIONS_METRIC = "repro_shard_migrations_total"
MIGRATIONS_ACTIVE_METRIC = "repro_shard_migrations_active"
HEDGED_READS_METRIC = "repro_hedged_reads_total"

#: Merge precedence (higher wins in the fleet fold).
_STATE_RANK = {"inactive": 0, "resolved": 1, "pending": 2, "firing": 3}

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
    "==": lambda value, bound: value == bound,
    "!=": lambda value, bound: value != bound,
}


def _check_op(op: str) -> str:
    if op not in _OPS:
        raise ValueError(
            f"unknown comparison {op!r}; expected one of {sorted(_OPS)}"
        )
    return op


@dataclass(frozen=True)
class ThresholdRule:
    """Fire while ``metric <op> threshold`` holds.

    ``metric`` resolves against monitor-derived values first, then
    gauges, then counters; with ``labels`` the exact series is read,
    without them a multi-series metric is summed.  A metric absent from
    the evaluation scope reads as condition-false (use
    :class:`AbsenceRule` to alert on absence itself).
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    for_seconds: float = 0.0
    labels: Optional[Mapping[str, str]] = None
    severity: str = "warning"

    def __post_init__(self) -> None:
        _check_op(self.op)


@dataclass(frozen=True)
class RateRule:
    """Fire while the metric's per-second rate of change ``<op>`` bound.

    The rate is the finite difference between consecutive engine
    evaluations of the *same* rule (clock-timed), so the first
    evaluation after startup or a value gap never fires.
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    for_seconds: float = 0.0
    labels: Optional[Mapping[str, str]] = None
    severity: str = "warning"

    def __post_init__(self) -> None:
        _check_op(self.op)


@dataclass(frozen=True)
class AbsenceRule:
    """Fire while the metric resolves to nothing at all.

    The liveness spelling: a worker that stops reporting its heartbeat
    counter goes *silent*, and silence -- not any value -- is the page.
    """

    name: str
    metric: str
    for_seconds: float = 0.0
    labels: Optional[Mapping[str, str]] = None
    severity: str = "critical"


@dataclass
class AlertState:
    """Mutable evaluation state for one rule."""

    rule: str
    severity: str
    state: str = "inactive"
    since: float = 0.0
    value: Optional[float] = None
    pending_since: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-able form (the ``/alerts`` payload row)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "since": self.since,
            "value": self.value,
        }


class AlertEngine:
    """Evaluate declarative rules against snapshots + monitors.

    Parameters
    ----------
    rules:
        The rule set (:class:`ThresholdRule` / :class:`RateRule` /
        :class:`AbsenceRule`); rule names must be unique.
    monitors:
        Objects with ``observe_snapshot(snapshot)`` (and optionally
        ``derived_metrics()``); run before rule resolution on every
        evaluation so derived values are in scope.
    clock:
        Monotonic-seconds callable driving ``for_seconds`` holds and
        rates.  Inject a fake under test for deterministic transitions.
    registry:
        Where transition counters land (process registry by default).
    """

    def __init__(
        self,
        rules: Sequence,
        *,
        monitors: Sequence = (),
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = list(rules)
        self.monitors = list(monitors)
        self.clock = clock
        self._registry = registry or get_registry()
        self._transitions = self._registry.counter(
            ALERT_TRANSITIONS_METRIC,
            "Alert rule state transitions (pending/firing/resolved)",
        )
        self._states = {
            rule.name: AlertState(rule.name, rule.severity) for rule in rules
        }
        # RateRule history: rule name -> (clock time, value).
        self._rate_points: dict[str, tuple[float, float]] = {}
        self._last_evaluated: Optional[float] = None

    # -- value resolution -------------------------------------------------

    def _resolve(self, metric, labels, snapshot, derived) -> Optional[float]:
        if metric in derived:
            return float(derived[metric])
        for section in ("gauges", "counters"):
            data = snapshot.get(section, {}).get(metric)
            if not data or not data["values"]:
                continue
            values = data["values"]
            if labels:
                value = values.get(format_label_pairs(labels))
                return None if value is None else float(value)
            return float(sum(values.values()))
        return None

    # -- state machine ----------------------------------------------------

    def _transition(self, state: AlertState, to: str, now: float) -> None:
        state.state = to
        state.since = now
        self._transitions.add(1, rule=state.rule, state=to)

    def _step(
        self, rule, state: AlertState, condition: bool, now: float
    ) -> None:
        if condition:
            if state.state in ("inactive", "resolved"):
                state.pending_since = now
                self._transition(state, "pending", now)
            if (
                state.state == "pending"
                and now - state.pending_since >= rule.for_seconds
            ):
                self._transition(state, "firing", now)
        else:
            if state.state == "firing":
                state.pending_since = None
                self._transition(state, "resolved", now)
            elif state.state == "pending":
                state.pending_since = None
                self._transition(state, "inactive", now)

    # -- evaluation -------------------------------------------------------

    def evaluate(self, snapshot: Optional[dict] = None) -> list[dict]:
        """Run one evaluation pass; returns the current state dicts.

        With no ``snapshot`` the engine's registry is snapshotted --
        pass a fleet-merged snapshot to alert on the aggregate view.
        """
        if snapshot is None:
            snapshot = self._registry.snapshot()
        now = self.clock()
        derived: dict[str, float] = {}
        for monitor in self.monitors:
            monitor.observe_snapshot(snapshot)
            getter = getattr(monitor, "derived_metrics", None)
            if getter is not None:
                derived.update(getter())
        for rule in self.rules:
            state = self._states[rule.name]
            value = self._resolve(rule.metric, rule.labels, snapshot, derived)
            if isinstance(rule, AbsenceRule):
                state.value = value
                self._step(rule, state, value is None, now)
                continue
            if isinstance(rule, RateRule):
                rate = None
                if value is not None:
                    point = self._rate_points.get(rule.name)
                    if point is not None and now > point[0]:
                        rate = (value - point[1]) / (now - point[0])
                    self._rate_points[rule.name] = (now, value)
                else:
                    self._rate_points.pop(rule.name, None)
                state.value = rate
                condition = rate is not None and _OPS[rule.op](
                    rate, rule.threshold
                )
                self._step(rule, state, condition, now)
                continue
            state.value = value
            condition = value is not None and _OPS[rule.op](
                value, rule.threshold
            )
            self._step(rule, state, condition, now)
        self._last_evaluated = now
        return self.states()

    def states(self) -> list[dict]:
        """Current state dicts, in rule-declaration order."""
        return [self._states[rule.name].to_dict() for rule in self.rules]

    def payload(self) -> dict:
        """The JSON body the ``/alerts`` endpoint and ``alerts`` op serve."""
        firing = sum(
            1 for state in self._states.values() if state.state == "firing"
        )
        return {
            "alerts": self.states(),
            "firing": firing,
            "evaluated_at": self._last_evaluated,
        }


def merge_alert_payloads(
    payloads: Sequence[dict], sources: Optional[Sequence[str]] = None
) -> dict:
    """Fold per-node ``/alerts`` payloads into one fleet view.

    Per rule name, the most severe state wins (``firing > pending >
    resolved > inactive``; ties keep the first seen) and the winning
    entry is annotated with its ``source`` when source labels are given.
    Rules only some nodes know about still appear -- a fleet with mixed
    rule sets degrades to the union, never drops a page.
    """
    if sources is not None and len(sources) != len(payloads):
        raise ValueError(
            f"{len(sources)} sources for {len(payloads)} payloads"
        )
    merged: dict[str, dict] = {}
    for index, payload in enumerate(payloads):
        source = sources[index] if sources is not None else None
        for entry in payload.get("alerts", []):
            candidate = dict(entry)
            if source is not None:
                candidate["source"] = source
            current = merged.get(entry["rule"])
            if current is None or (
                _STATE_RANK.get(candidate["state"], 0)
                > _STATE_RANK.get(current["state"], 0)
            ):
                merged[entry["rule"]] = candidate
    alerts = list(merged.values())
    return {
        "alerts": alerts,
        "firing": sum(1 for entry in alerts if entry["state"] == "firing"),
        "nodes": len(payloads),
    }


def default_fault_rules(
    *,
    restart_rate: float = 0.05,
    retry_rate: float = 1.0,
    degraded_rate: float = 0.0,
    for_seconds: float = 30.0,
) -> list:
    """The stock fault-tolerance rule set (attach to any AlertEngine).

    All three are :class:`RateRule`\\ s over monotone counters: a restart
    that happened an hour ago must not page forever, so the page tracks
    the *rate* of new events between evaluations, not the lifetime total.

    * ``worker-restart-storm`` -- supervised respawns are self-healing
      one at a time, but a sustained restart rate means a worker is
      crash-looping (critical);
    * ``client-retry-storm`` -- client-side reconnect/backoff retries
      above ``retry_rate``/s sustained for the hold window indicate a
      flapping server or network (warning);
    * ``degraded-reads`` -- any coordinator read served from a stale
      cached snapshot fires immediately (``> 0`` rate, no hold): every
      degraded answer is one an operator should know about.
    """
    return [
        RateRule(
            "worker-restart-storm",
            WORKER_RESTARTS_METRIC,
            restart_rate,
            for_seconds=for_seconds,
            severity="critical",
        ),
        RateRule(
            "client-retry-storm",
            CLIENT_RETRIES_METRIC,
            retry_rate,
            for_seconds=for_seconds,
            severity="warning",
        ),
        RateRule(
            "degraded-reads",
            DEGRADED_READS_METRIC,
            degraded_rate,
            severity="warning",
        ),
    ]


def default_membership_rules(
    *,
    hedge_rate: float = 1.0,
    for_seconds: float = 30.0,
) -> list:
    """The stock self-healing-fleet rule set (attach to any AlertEngine).

    * ``server-down`` -- the membership gauge reports at least one
      server in the ``down`` state; fires immediately (critical): a
      down server means shards are being served from a migrated copy
      or a stale cache until it returns;
    * ``migration-in-progress`` -- the coordinator is actively moving
      a dead server's shards; no hold (warning), so operators see the
      handoff window even when it completes quickly;
    * ``hedge-backup-rate`` -- hedged reads are *winning on the backup
      server* above ``hedge_rate``/s sustained for the hold window: the
      primary's tail latency has degraded past its own p99 (warning).
      Fast-path and primary-won hedges are excluded -- those are the
      feature working, not a symptom.
    """
    return [
        ThresholdRule(
            "server-down",
            MEMBERSHIP_METRIC,
            0,
            labels={"state": "down"},
            severity="critical",
        ),
        ThresholdRule(
            "migration-in-progress",
            MIGRATIONS_ACTIVE_METRIC,
            0,
            severity="warning",
        ),
        RateRule(
            "hedge-backup-rate",
            HEDGED_READS_METRIC,
            hedge_rate,
            for_seconds=for_seconds,
            labels={"outcome": "backup"},
            severity="warning",
        ),
    ]
