"""repro.obs -- the unified telemetry layer.

One coherent observability surface across every tier of the pipeline
(engine -> shards -> process fleet -> service):

:mod:`repro.obs.metrics`
    counters / gauges / fixed-bucket histograms whose state snapshots
    and merges exactly like sketches -- process-backend workers ship
    registry snapshots through the existing pipe fan-in and the parent
    merges them bit-exactly;
:mod:`repro.obs.trace`
    chunk-level spans (monotonic start/duration, context-propagated
    parent ids) in a bounded ring, with JSONL export;
:mod:`repro.obs.monitors`
    estimate-drift, interaction-budget, and shard-skew alarms over game
    results and registry snapshots;
:mod:`repro.obs.expo`
    Prometheus text exposition from any registry snapshot (the service's
    ``metrics`` op renders server- and fleet-merged views with it);
:mod:`repro.obs.alerts`
    declarative alert rules (threshold / rate / absence with ``for:``
    holds) evaluated into a pending -> firing -> resolved state machine,
    fleet-mergeable most-severe-wins;
:mod:`repro.obs.gateway`
    the stdlib HTTP face: ``/metrics``, ``/healthz``, ``/readyz``,
    ``/spans`` (OTLP/JSON), and ``/alerts`` on a real port.

``REPRO_OBS=0`` is the kill switch: every telemetry instrument and the
tracer no-op (the recorded ``obs_overhead`` benchmark pins the
enabled-mode cost too).  :class:`RegistryStatsBase` books are the one
exception -- they are functional accounting (service ``stats``
payloads, ingest summaries), so they keep counting with the switch
thrown.  :func:`timer` is the sanctioned phase stopwatch -- it always
measures (callers may rely on ``.seconds`` regardless of the switch) and
records a span plus a ``repro_phase_seconds`` observation only when
observability is on, which is how experiment wall-times, attack search
times, and engine chunk times land in one histogram family.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.alerts import (
    CLIENT_RETRIES_METRIC,
    DEGRADED_READS_METRIC,
    HEDGED_READS_METRIC,
    MEMBERSHIP_METRIC,
    MIGRATIONS_ACTIVE_METRIC,
    SHARD_MIGRATIONS_METRIC,
    WORKER_RESTARTS_METRIC,
    AbsenceRule,
    AlertEngine,
    AlertState,
    RateRule,
    ThresholdRule,
    default_fault_rules,
    default_membership_rules,
    merge_alert_payloads,
)
from repro.obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    escape_label_value,
    format_label_pairs,
    render_prometheus,
)
from repro.obs.gateway import ObservabilityGateway
from repro.obs.metrics import (
    SIZE_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryStatsBase,
    counter_total,
    counter_value,
    env_enabled,
    get_registry,
    histogram_quantile,
    merge_snapshots,
    snapshot_is_empty,
)
from repro.obs.monitors import (
    Alarm,
    EstimateDriftMonitor,
    InteractionBudgetMonitor,
    ShardSkewMonitor,
)
from repro.obs.trace import SpanRecord, Tracer, export_otlp, get_tracer

__all__ = [
    "AbsenceRule",
    "Alarm",
    "AlertEngine",
    "AlertState",
    "CLIENT_RETRIES_METRIC",
    "Counter",
    "DEGRADED_READS_METRIC",
    "EXPOSITION_CONTENT_TYPE",
    "EstimateDriftMonitor",
    "Gauge",
    "HEDGED_READS_METRIC",
    "Histogram",
    "InteractionBudgetMonitor",
    "MEMBERSHIP_METRIC",
    "MIGRATIONS_ACTIVE_METRIC",
    "MetricsRegistry",
    "ObservabilityGateway",
    "PHASE_SECONDS_METRIC",
    "PhaseTimer",
    "RateRule",
    "RegistryStatsBase",
    "SHARD_MIGRATIONS_METRIC",
    "SIZE_BUCKETS",
    "ShardSkewMonitor",
    "SpanRecord",
    "TIME_BUCKETS",
    "ThresholdRule",
    "Tracer",
    "WORKER_RESTARTS_METRIC",
    "counter_total",
    "counter_value",
    "default_fault_rules",
    "default_membership_rules",
    "enabled",
    "env_enabled",
    "escape_label_value",
    "export_otlp",
    "format_label_pairs",
    "get_registry",
    "get_tracer",
    "histogram_quantile",
    "merge_alert_payloads",
    "merge_snapshots",
    "render_prometheus",
    "reset",
    "snapshot_is_empty",
    "timer",
]

#: The shared wall-time histogram family every instrumented phase
#: observes into (label ``phase=`` distinguishes engine chunks, scatter
#: phases, service requests, experiments, attack searches, ...).
PHASE_SECONDS_METRIC = "repro_phase_seconds"
PHASE_SECONDS_HELP = "Wall time of instrumented phases, in seconds"


def enabled() -> bool:
    """Whether the process-wide registry is currently recording."""
    return get_registry().enabled


def reset() -> None:
    """Clear the process-wide registry and tracer (handles stay valid).

    Process-backend shard workers call this right after fork so their
    snapshots carry only worker-side activity -- fork-inherited parent
    counts would otherwise double under the fan-in merge.
    """
    get_registry().reset()
    get_tracer().clear()


def phase_histogram(registry: Optional[MetricsRegistry] = None) -> Histogram:
    """The shared ``repro_phase_seconds`` histogram (get-or-create)."""
    return (registry or get_registry()).histogram(
        PHASE_SECONDS_METRIC, PHASE_SECONDS_HELP, buckets=TIME_BUCKETS
    )


class PhaseTimer:
    """Stopwatch for one named phase (build via :func:`timer`).

    Always measures -- ``.seconds`` is valid even under ``REPRO_OBS=0``,
    so report fields like attack wall-times never lose data -- and
    records a span plus one ``repro_phase_seconds{phase=...}``
    observation only when observability is enabled.
    """

    def __init__(self, phase: str, labels: dict) -> None:
        self.phase = phase
        self.labels = labels
        self.seconds = 0.0
        self._span = None
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        tracer = get_tracer()
        if tracer.enabled:
            self._span = tracer.span(self.phase, phase=self.phase, **self.labels)
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.seconds = time.perf_counter() - self._start
        if self._span is not None:
            self._span.__exit__(*exc_info)
            self._span = None
        registry = get_registry()
        if registry.enabled:
            phase_histogram(registry).observe(
                self.seconds, phase=self.phase, **self.labels
            )
        return False


def timer(phase: str, **labels) -> PhaseTimer:
    """Time one phase: ``with obs.timer("experiment", experiment="e02"):``."""
    return PhaseTimer(phase, labels)
