"""Chunk-level structured tracing: spans over the pipeline's hot boundaries.

Metrics (:mod:`repro.obs.metrics`) answer "how much / how fast on
average"; spans answer "what did *this* chunk do".  A span is a
``(name, span_id, parent_id, start, duration, attrs)`` record with a
monotonic (``perf_counter``) start: engine chunks, partitioner splits,
process-pool scatter phases, and service requests each record one at
their natural granularity (never per update), so tracing stays
off-hot-path cheap and ``REPRO_OBS=0`` turns it off entirely.

Parenting uses a :class:`contextvars.ContextVar`, so nesting composes
across threads *and* asyncio tasks: an experiment's ``obs.timer`` span
becomes the parent of every engine-chunk span driven inside it, and
concurrent service requests on one event loop keep their span stacks
separate.

Storage is a bounded in-memory ring (`deque(maxlen=...)`) -- a
long-running service retains the last ``capacity`` spans at O(1) cost --
with :meth:`Tracer.export_jsonl` for offline analysis and
:func:`export_otlp` for the gateway's ``/spans`` endpoint (OTLP/JSON
``resourceSpans`` shape).  Overflow is *counted*, never silent: each
span the ring evicts (or cannot admit) increments
:attr:`Tracer.dropped`, the process-wide tracer surfaces the count as
the ``repro_trace_dropped_total`` gauge at scrape time, and every OTLP
export carries it -- a consumer can always tell a quiet pipeline from a
saturated ring.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import env_enabled

__all__ = [
    "SpanRecord",
    "TRACE_DROPPED_METRIC",
    "Tracer",
    "export_otlp",
    "get_tracer",
]

#: Default ring capacity (spans retained in memory).
DEFAULT_CAPACITY = 4096

#: Gauge surfacing the process-wide tracer's eviction count (set at
#: scrape time by a registry collector hook; see :func:`get_tracer`).
TRACE_DROPPED_METRIC = "repro_trace_dropped_total"


@dataclass
class SpanRecord:
    """One completed span (times are ``perf_counter`` seconds)."""

    name: str
    span_id: int
    parent_id: int
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form (the JSONL export row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Do-nothing span handed out when tracing is disabled."""

    __slots__ = ()
    span_id = 0
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager for one live span (created by :meth:`Tracer.span`)."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "start",
        "duration", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.duration: Optional[float] = None

    def __enter__(self) -> "_SpanContext":
        tracer = self.tracer
        self.parent_id = tracer._current.get()
        self.span_id = next(tracer._ids)
        self._token = tracer._current.set(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.duration = time.perf_counter() - self.start
        tracer = self.tracer
        tracer._current.reset(self._token)
        entry = (
            self.name,
            self.span_id,
            self.parent_id,
            self.start,
            self.duration,
            self.attrs,
        )
        with tracer._lock:
            if len(tracer._ring) == tracer.capacity:
                tracer.dropped += 1
            tracer._ring.append(entry)
        return False


class Tracer:
    """Bounded-ring span recorder with context-propagated parent ids.

    :attr:`dropped` counts spans the bounded ring evicted (oldest-first
    on overflow) since construction or the last :meth:`clear` --
    exported alongside every span dump so saturation is visible.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        enabled: Optional[bool] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = env_enabled() if enabled is None else enabled
        self.capacity = capacity
        #: Spans evicted by ring overflow since the last clear().
        self.dropped = 0
        # Ring entries are plain tuples (the record() hot path runs once
        # per chunk; dataclass construction is deferred to spans()).
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._current: contextvars.ContextVar[int] = contextvars.ContextVar(
            "repro_obs_span", default=0
        )
        self._lock = threading.Lock()

    def span(self, name: str, **attrs):
        """Open one span around a ``with`` block (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attrs)

    def record(self, name: str, start: float, duration: float, **attrs) -> None:
        """Append one already-measured span (the hot-loop spelling:
        callers time with two bare ``perf_counter`` reads and pay only a
        tuple append when tracing is on).  The parent is whatever span
        is ambient in the calling context."""
        if not self.enabled:
            return
        entry = (name, next(self._ids), self._current.get(), start, duration, attrs)
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(entry)

    def record_batch(self, name: str, rows) -> None:
        """Append many already-measured spans in one locked pass.

        ``rows`` is an iterable of ``(start, duration, attrs)`` triples;
        all of them share the parent ambient at flush time.  This is the
        bulk spelling drive loops use: accumulate rows locally, flush
        the whole call's worth at once."""
        if not self.enabled:
            return
        parent = self._current.get()
        ids = self._ids
        entries = [
            (name, next(ids), parent, start, duration, attrs)
            for start, duration, attrs in rows
        ]
        with self._lock:
            overflow = len(self._ring) + len(entries) - self.capacity
            if overflow > 0:
                self.dropped += overflow
            self._ring.extend(entries)

    def spans(self) -> list[SpanRecord]:
        """The retained spans, oldest first."""
        with self._lock:
            entries = list(self._ring)
        return [SpanRecord(*entry) for entry in entries]

    def clear(self) -> None:
        """Drop every retained span and zero the eviction count
        (capacity and enablement unchanged)."""
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def export_jsonl(self, path) -> int:
        """Write the retained spans as JSON lines; returns the count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for record in spans:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return len(spans)


def _otlp_attr_value(value) -> dict:
    """One OTLP ``AnyValue`` (the typed union OTLP attributes use)."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attrs(attrs: dict) -> list[dict]:
    return [
        {"key": str(key), "value": _otlp_attr_value(value)}
        for key, value in attrs.items()
    ]


def export_otlp(tracer: Tracer, service_name: str = "repro") -> dict:
    """Export the tracer's retained spans in OTLP/JSON shape.

    Produces one ``resourceSpans`` entry (one scope, ``repro.obs``) with
    8-byte hex span ids and unix-nano timestamps.  Span starts are
    recorded as ``perf_counter`` seconds, so the wall-clock anchor is
    computed once at export time (``time.time() - perf_counter()``) and
    applied uniformly -- relative ordering and durations are exact, the
    absolute epoch is approximate to within scheduler jitter.  The
    payload carries ``dropped`` (ring evictions since the last clear) at
    the top level so ``/spans`` consumers can distinguish a quiet
    pipeline from a saturated ring.
    """
    spans = tracer.spans()
    epoch_offset = time.time() - time.perf_counter()
    otlp_spans = []
    for record in spans:
        start_ns = int((record.start + epoch_offset) * 1e9)
        end_ns = start_ns + int(record.duration * 1e9)
        span = {
            "traceId": "0" * 32,
            "spanId": f"{record.span_id & 0xFFFFFFFFFFFFFFFF:016x}",
            "name": record.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": _otlp_attrs(record.attrs),
        }
        if record.parent_id:
            span["parentSpanId"] = (
                f"{record.parent_id & 0xFFFFFFFFFFFFFFFF:016x}"
            )
        otlp_spans.append(span)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs"},
                        "spans": otlp_spans,
                    }
                ],
            }
        ],
        "dropped": tracer.dropped,
    }


_default_tracer: Optional[Tracer] = None
_default_lock = threading.Lock()

# Same fork discipline as the metrics registry (see
# ``repro.obs.metrics``): supervised worker respawn forks mid-serving,
# and a child inheriting a locked tracer ring deadlocks in its post-fork
# ``obs.reset()``.  Hold the default tracer's lock across every fork.

_atfork_held: list = []


def _atfork_acquire() -> None:
    tracer = _default_tracer
    if tracer is not None:
        tracer._lock.acquire()
        _atfork_held.append(tracer._lock)


def _atfork_release() -> None:
    while _atfork_held:
        lock = _atfork_held.pop()
        try:
            lock.release()
        except RuntimeError:  # pragma: no cover - never held; be safe
            pass


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(
        before=_atfork_acquire,
        after_in_parent=_atfork_release,
        after_in_child=_atfork_release,
    )


def get_tracer() -> Tracer:
    """The process-wide tracer every built-in span reports to.

    First construction also hooks the process registry: a collector
    sets the ``repro_trace_dropped_total`` gauge from
    :attr:`Tracer.dropped` at scrape time (only once spans have
    actually been evicted, so quiet processes keep clean snapshots).
    """
    global _default_tracer
    if _default_tracer is None:
        with _default_lock:
            if _default_tracer is None:
                tracer = Tracer()
                _register_drop_collector(tracer)
                _default_tracer = tracer
    return _default_tracer


def _register_drop_collector(tracer: Tracer) -> None:
    # Imported lazily: metrics imports nothing from here, but keeping
    # the registry hookup out of module import keeps Tracer usable in
    # isolation (tests build private tracers without touching the
    # process registry).
    from repro.obs.metrics import get_registry

    registry = get_registry()
    gauge = registry.gauge(
        TRACE_DROPPED_METRIC,
        "Spans evicted from the process tracer ring since last clear.",
    )

    def _fold() -> None:
        if tracer.dropped:
            gauge.set(tracer.dropped)

    registry.add_collector(_fold)
