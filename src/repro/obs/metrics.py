"""The mergeable metrics registry: counters, gauges, fixed-bucket histograms.

Design
------
Every hot path in the repo already reports state through one idiom:
accumulate locally, snapshot to plain data, merge snapshots bit-exactly
(the sketch protocol).  The metrics layer reuses it verbatim.  A
:class:`MetricsRegistry` holds named instruments; each instrument keeps
``{label-set: value}`` maps of exact Python numbers (ints never
truncate, so counter merges are bit-exact by construction);
:meth:`MetricsRegistry.snapshot` renders the whole registry to a plain
dict the distributed codec can ship over the existing worker pipes; and
:func:`merge_snapshots` folds any number of snapshots into one --
commutative and associative, exactly like sketch merges.  A process
fleet therefore reports *one* coherent registry: each worker snapshots
its own registry, the parent merges them with its own, and the service
renders the merged view (:mod:`repro.obs.expo`).

Overhead discipline
-------------------
Instrumentation must be invisible at engine-chunk granularity:

* the ``REPRO_OBS=0`` kill switch disables every instrument at the top
  of each mutator (one attribute load + branch, no label formatting, no
  locking) -- the recorded ``obs_overhead`` benchmark
  (``benchmarks/record_obs_overhead.py``) holds the instrumented write
  path within budget against the kill-switched one;
* instruments are resolved once (module scope) and mutated per *chunk*,
  never per update.

Stats-surface migration
-----------------------
:class:`RegistryStatsBase` is the shim that re-homes the pre-obs stats
dataclasses (``ServerStats`` / ``ConnectionStats``) onto the registry:
counter fields become live views over labeled registry series, sanctioned
mutation goes through :meth:`RegistryStatsBase.bump`, and direct field
assignment still works but emits a :class:`DeprecationWarning` (one
source of truth; the old spelling gets one deprecation cycle).
"""

from __future__ import annotations

import bisect
import os
import threading
import warnings
from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.expo import format_label_pairs

__all__ = [
    "BoundCounter",
    "BoundHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistryStatsBase",
    "SIZE_BUCKETS",
    "TIME_BUCKETS",
    "counter_total",
    "counter_value",
    "get_registry",
    "histogram_quantile",
    "merge_snapshots",
    "snapshot_is_empty",
]

#: Environment kill switch: ``REPRO_OBS=0`` (or ``false``/``off``/``no``)
#: disables every instrument and the tracer at import time.
OBS_ENV_FLAG = "REPRO_OBS"

#: Default buckets for wall-time histograms (seconds): 10us .. 10s, the
#: span from one tiny engine chunk to one full experiment.
TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for batch/chunk-size histograms: powers of two up to
#: 2^20 updates (deterministic integer bounds, so histogram merges stay
#: bit-exact across backends).
SIZE_BUCKETS: tuple[float, ...] = tuple(float(1 << b) for b in range(0, 21, 2))


def env_enabled() -> bool:
    """Whether ``REPRO_OBS`` enables observability (default: enabled)."""
    return os.environ.get(OBS_ENV_FLAG, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def _label_key(labels: Mapping[str, object]) -> str:
    """Canonical (sorted, escaped) Prometheus-style label string.

    Delegates to :func:`repro.obs.expo.format_label_pairs` -- the
    canonical string is both the storage key and the exposition
    spelling, so two registries that counted the same events always
    produce byte-identical snapshots (the property the fan-in equality
    tests pin) and series sort identically everywhere they render.
    """
    return format_label_pairs(labels)


class _Instrument:
    """Shared plumbing: one ``{label-key: value}`` map under a lock."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str) -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self._lock = registry._lock
        self._values: dict[str, object] = {}

    def value(self, **labels):
        """Current value for one label set (0 when never touched)."""
        return self._values.get(_label_key(labels), 0)

    def remove(self, **labels) -> None:
        """Drop one label series (bounds cardinality for per-connection
        series; removal is allowed even when the registry is disabled)."""
        with self._lock:
            self._values.pop(_label_key(labels), None)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def labeled_values(self) -> dict:
        with self._lock:
            return dict(self._values)


class BoundCounter:
    """A counter series with its label key pre-resolved (see ``bind``).

    The per-chunk hot paths mutate through these: no label formatting,
    no registry dict walk -- one enabled check, one lock, one dict
    update.  ``add_unlocked`` additionally skips the lock for callers
    that hold ``registry.lock`` around a group of updates (one
    acquisition covers every instrument, since all of a registry's
    instruments share that lock).
    """

    __slots__ = ("registry", "_values", "_lock", "key")

    def __init__(self, instrument: "Counter", key: str) -> None:
        self.registry = instrument.registry
        self._values = instrument._values
        self._lock = instrument._lock
        self.key = key

    def add(self, amount=1) -> None:
        """Add ``amount`` to the bound series (no-op while disabled)."""
        if not self.registry.enabled:
            return
        values = self._values
        with self._lock:
            values[self.key] = values.get(self.key, 0) + amount

    def add_unlocked(self, amount=1) -> None:
        """``add`` for callers already holding ``registry.lock``."""
        values = self._values
        values[self.key] = values.get(self.key, 0) + amount


class BoundHistogram:
    """A histogram series with its label key pre-resolved (see ``bind``)."""

    __slots__ = ("registry", "instrument", "_values", "_lock", "key")

    def __init__(self, instrument: "Histogram", key: str) -> None:
        self.registry = instrument.registry
        self.instrument = instrument
        self._values = instrument._values
        self._lock = instrument._lock
        self.key = key

    def observe(self, value) -> None:
        """Record one observation on the bound series (no-op while disabled)."""
        if not self.registry.enabled:
            return
        with self._lock:
            self.observe_unlocked(value)

    def observe_unlocked(self, value) -> None:
        """``observe`` for callers already holding ``registry.lock``."""
        buckets = self.instrument.buckets
        slot = bisect.bisect_left(buckets, value)
        series = self._values.get(self.key)
        if series is None:
            series = [[0] * (len(buckets) + 1), 0.0, 0]
            self._values[self.key] = series
        series[0][slot] += 1
        series[1] += value
        series[2] += 1


class Counter(_Instrument):
    """Monotone counter (exact ints, or floats for seconds totals)."""

    kind = "counter"

    def bind(self, **labels) -> BoundCounter:
        """Pre-resolve one label series for hot-path mutation.

        Bound handles stay valid across :meth:`MetricsRegistry.reset`
        (reset clears values in place; it never replaces the dicts).
        """
        return BoundCounter(self, _label_key(labels))

    def add(self, amount=1, **labels) -> None:
        """Add ``amount`` (>= 0) to one label series (no-op while disabled)."""
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (amount={amount!r})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    #: Prometheus-style spelling.
    inc = add

    def _adjust(self, delta, **labels) -> None:
        """Non-monotone internal adjustment (deprecated-setter shim only)."""
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + delta


class Gauge(_Instrument):
    """Set-or-add instrument; merges by summing (per-process deltas)."""

    kind = "gauge"

    def set(self, value, **labels) -> None:
        """Overwrite one label series with ``value`` (no-op while disabled)."""
        if not self.registry.enabled:
            return
        with self._lock:
            self._values[_label_key(labels)] = value

    def add(self, amount=1, **labels) -> None:
        """Add ``amount`` (either sign) to one series (no-op while disabled)."""
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount


class Histogram(_Instrument):
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Buckets are upper bounds (Prometheus ``le`` semantics) with an
    implicit ``+Inf``; fixing them at registration is what makes
    histogram merges element-wise integer additions -- bit-exact across
    any fan-in order.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        buckets: Sequence[float],
    ) -> None:
        super().__init__(registry, name, help_text)
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        ordered = [float(bound) for bound in buckets]
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets: tuple[float, ...] = tuple(ordered)

    def bind(self, **labels) -> BoundHistogram:
        """Pre-resolve one label series for hot-path observation."""
        return BoundHistogram(self, _label_key(labels))

    def observe(self, value, **labels) -> None:
        """Record one observation into its bucket (no-op while disabled)."""
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        slot = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._values.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._values[key] = series
            series[0][slot] += 1
            series[1] += value
            series[2] += 1

    def value(self, **labels):
        """``(counts, sum, count)`` for one label set (None when empty)."""
        series = self._values.get(_label_key(labels))
        if series is None:
            return None
        return (list(series[0]), series[1], series[2])

    def labeled_values(self) -> dict:
        """Deep-copied ``{label-key: [counts, sum, count]}`` map."""
        with self._lock:
            return {
                key: [list(series[0]), series[1], series[2]]
                for key, series in self._values.items()
            }


class MetricsRegistry:
    """Named instruments with sketch-style snapshot/merge semantics.

    One process-wide default instance (:func:`get_registry`) backs all
    built-in instrumentation; isolated instances are for tests.
    ``enabled`` is resolved from ``REPRO_OBS`` at construction and may be
    flipped at runtime (benchmarks use this to A/B the overhead).
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = env_enabled() if enabled is None else enabled
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[tuple] = []

    @property
    def lock(self):
        """The lock all of this registry's instruments share.

        Hot paths that touch several instruments per chunk hold it once
        around a group of ``add_unlocked`` / ``observe_unlocked`` calls
        on bound series instead of paying one acquisition per update.
        """
        return self._lock

    def _register(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and tuple(
                    float(bound) for bound in buckets
                ) != existing.buckets:
                    raise ValueError(
                        f"histogram {name!r} re-registered with different "
                        "buckets; fixed buckets are what make merges exact"
                    )
                return existing
            instrument = cls(self, name, help_text, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter (idempotent by name)."""
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge (idempotent by name)."""
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = TIME_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram (buckets must agree)."""
        return self._register(Histogram, name, help_text, buckets=buckets)

    # -- the sketch-style state protocol ------------------------------------

    def add_collector(self, fold, discard=None) -> None:
        """Register a scrape-time fold hook.

        Lock-free hot paths (e.g. the per-chunk sketch counters) park
        pending values in GIL-atomic buffers and register a ``fold``
        here; :meth:`snapshot` runs every hook first, so totals are
        exact at every scrape/merge boundary without the hot path ever
        taking the registry lock.  ``discard`` (optional) drops any
        pending values on :meth:`reset` -- forked workers use it so
        inherited, not-yet-folded parent values never leak into worker
        snapshots.
        """
        with self._lock:
            self._collectors.append((fold, discard))

    def snapshot(self) -> dict:
        """Plain-data snapshot of every non-empty instrument.

        The shape is codec-friendly (strings, ints, floats, lists,
        dicts), so worker registries travel over the existing process
        pipes unchanged; :func:`merge_snapshots` is its fan-in.
        Collector hooks fold first (see :meth:`add_collector`).
        """
        for fold, _discard in self._collectors:
            fold()
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            values = instrument.labeled_values()
            if not values:
                continue
            if instrument.kind == "counter":
                counters[instrument.name] = {
                    "help": instrument.help, "values": values,
                }
            elif instrument.kind == "gauge":
                gauges[instrument.name] = {
                    "help": instrument.help, "values": values,
                }
            else:
                histograms[instrument.name] = {
                    "help": instrument.help,
                    "buckets": list(instrument.buckets),
                    "values": values,
                }
        return {
            "counters": counters, "gauges": gauges, "histograms": histograms,
        }

    def reset(self) -> None:
        """Clear every instrument's values; registrations stay live, so
        module-scope instrument handles keep working after a reset (the
        process-backend workers reset their fork-inherited registry this
        way before counting anything of their own)."""
        for _fold, discard in self._collectors:
            if discard is not None:
                discard()
        with self._lock:
            for instrument in self._instruments.values():
                instrument.clear()


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold registry snapshots into one -- the metrics fan-in.

    Counters and gauges sum per label set; histograms require identical
    buckets and sum per-bucket counts element-wise.  Integer counter
    merges are bit-exact regardless of fan-in order (commutative and
    associative, exactly like sketch merges).
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for section in ("counters", "gauges"):
            for name, data in snapshot.get(section, {}).items():
                into = merged[section].setdefault(
                    name, {"help": data.get("help", ""), "values": {}}
                )
                values = into["values"]
                for key, value in data["values"].items():
                    values[key] = values.get(key, 0) + value
        for name, data in snapshot.get("histograms", {}).items():
            buckets = [float(bound) for bound in data["buckets"]]
            into = merged["histograms"].setdefault(
                name,
                {
                    "help": data.get("help", ""),
                    "buckets": buckets,
                    "values": {},
                },
            )
            if into["buckets"] != buckets:
                raise ValueError(
                    f"histogram {name!r}: cannot merge snapshots with "
                    f"different buckets ({into['buckets']} vs {buckets})"
                )
            values = into["values"]
            for key, series in data["values"].items():
                counts, total, count = series[0], series[1], series[2]
                existing = values.get(key)
                if existing is None:
                    values[key] = [list(counts), total, count]
                else:
                    if len(existing[0]) != len(counts):
                        raise ValueError(
                            f"histogram {name!r}: bucket count mismatch "
                            "between snapshots"
                        )
                    existing[0] = [
                        a + b for a, b in zip(existing[0], counts)
                    ]
                    existing[1] += total
                    existing[2] += count
    return merged


def snapshot_is_empty(snapshot: dict) -> bool:
    """True when a snapshot carries no metric state at all (the
    kill-switch invariant: ``REPRO_OBS=0`` runs snapshot empty)."""
    return not any(
        snapshot.get(section) for section in ("counters", "gauges", "histograms")
    )


def counter_value(snapshot: dict, name: str, **labels):
    """One counter series' value out of a snapshot (0 when absent)."""
    data = snapshot.get("counters", {}).get(name)
    if data is None:
        return 0
    return data["values"].get(_label_key(labels), 0)


def counter_total(snapshot: dict, name: str):
    """Sum of every label series of one counter in a snapshot."""
    data = snapshot.get("counters", {}).get(name)
    if data is None:
        return 0
    return sum(data["values"].values())


def histogram_quantile(
    snapshot: dict, name: str, quantile: float = 0.99, **labels
) -> Optional[float]:
    """Bucket-resolution quantile estimate from a snapshot histogram.

    Prometheus-style conservative answer: walks the cumulative bucket
    counts and returns the ``le`` upper bound of the bucket the rank
    lands in (observations in the +Inf bucket clamp to the highest
    finite bound).  With ``labels`` the named series is read; without,
    every series of the histogram is summed first.  Returns ``None``
    when the histogram or series is absent or empty -- callers fall
    back to a static default (the hedged-read delay does exactly this).
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    data = snapshot.get("histograms", {}).get(name)
    if data is None:
        return None
    if labels:
        series = data["values"].get(_label_key(labels))
        selected = [series] if series is not None else []
    else:
        selected = list(data["values"].values())
    if not selected:
        return None
    bounds = [float(bound) for bound in data["buckets"]]
    counts = [0] * (len(bounds) + 1)
    for entry in selected:
        for index, value in enumerate(entry[0]):
            counts[index] += value
    total = sum(counts)
    if total <= 0:
        return None
    rank = quantile * total
    cumulative = 0
    for index, value in enumerate(counts):
        cumulative += value
        if cumulative >= rank:
            return bounds[min(index, len(bounds) - 1)]
    return bounds[-1]


_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every built-in instrument reports to."""
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry


# -- fork safety -------------------------------------------------------------
#
# Supervised worker respawn forks *while the process is serving*: the
# event-loop and gateway threads may hold the registry lock (stats bumps,
# scrapes) at the exact fork instant, and a child that inherits a locked
# lock deadlocks the moment its post-fork ``obs.reset()`` touches it.
# Holding the lock across the fork (classic acquire-in-before, release-in
# -both-halves) guarantees the child starts with a consistent, unlocked
# registry.  Pool construction forks go through the same guard for free.

_atfork_held: list = []


def _atfork_acquire() -> None:
    registry = _default_registry
    if registry is not None:
        registry._lock.acquire()
        _atfork_held.append(registry._lock)


def _atfork_release() -> None:
    while _atfork_held:
        lock = _atfork_held.pop()
        try:
            lock.release()
        except RuntimeError:  # pragma: no cover - never held; be safe
            pass


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(
        before=_atfork_acquire,
        after_in_parent=_atfork_release,
        after_in_child=_atfork_release,
    )


class RegistryStatsBase:
    """Re-homes a stats dataclass surface onto registry instruments.

    Subclasses declare ``_COUNTERS`` / ``_GAUGES`` mapping attribute
    names to ``(metric_name, help)`` and call :meth:`_init_metrics` with
    their label set.  Declared attributes then *read* live registry
    values; :meth:`bump` is the sanctioned mutation; direct assignment
    keeps working for one deprecation cycle but warns.
    """

    _COUNTERS: dict[str, tuple[str, str]] = {}
    _GAUGES: dict[str, tuple[str, str]] = {}

    def _init_metrics(
        self,
        labels: Mapping[str, object],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        registry = registry or get_registry()
        instruments: dict[str, _Instrument] = {}
        for attr, (name, help_text) in self._COUNTERS.items():
            instruments[attr] = registry.counter(name, help_text)
        for attr, (name, help_text) in self._GAUGES.items():
            instruments[attr] = registry.gauge(name, help_text)
        self.__dict__["_labels"] = dict(labels)
        self.__dict__["_registry"] = registry
        self.__dict__["_instruments"] = instruments

    def bump(self, **amounts) -> None:
        """Add to the named counter/gauge fields (the sanctioned path).

        Writes land regardless of the ``REPRO_OBS`` kill switch: these
        objects are functional accounting their owners read back (the
        service's ``stats`` payload, ingest summaries), not optional
        probes -- the switch silences the pipeline's telemetry
        instruments, never the books.
        """
        instruments = self._instruments
        key = _label_key(self._labels)
        with self._registry.lock:
            for attr, amount in amounts.items():
                values = instruments[attr]._values
                values[key] = values.get(key, 0) + amount

    def dispose(self) -> None:
        """Drop this surface's label series from every instrument."""
        for instrument in self._instruments.values():
            instrument.remove(**self._labels)

    def __getattr__(self, attr: str):
        instruments = self.__dict__.get("_instruments")
        if instruments is not None and attr in instruments:
            return instruments[attr].value(**self.__dict__["_labels"])
        raise AttributeError(
            f"{type(self).__name__} object has no attribute {attr!r}"
        )

    def __setattr__(self, attr: str, value) -> None:
        if attr in self._COUNTERS or attr in self._GAUGES:
            warnings.warn(
                f"direct mutation of {type(self).__name__}.{attr} is "
                "deprecated; these stats are views over the obs metrics "
                f"registry -- use bump({attr}=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            instrument = self._instruments[attr]
            key = _label_key(self._labels)
            with self._registry.lock:
                # Absolute assignment, unconditionally -- same books-
                # always-count contract as bump().
                instrument._values[key] = value
        else:
            object.__setattr__(self, attr, value)
