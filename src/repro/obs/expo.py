"""Prometheus text exposition rendered from registry snapshots.

Renders any :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or
:func:`repro.obs.metrics.merge_snapshots` result) in the Prometheus text
format (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
histogram series with ``_sum`` / ``_count``).  Because it renders from
*snapshots*, the same function serves a local registry, one server's
``metrics`` op, the observability gateway's ``/metrics`` endpoint, and
the coordinator's fleet-merged view -- exposition is a pure function of
the mergeable state, exactly like sketch queries.

This module is also the canonical home of the exposition-format escaping
rules: :func:`escape_label_value` (backslash, then double-quote, then
newline -- the order matters, or escaped backslashes re-escape) and
:func:`format_label_pairs` (label names in sorted order, values escaped).
:mod:`repro.obs.metrics` builds its canonical label keys from these, so
the storage key *is* the exposition spelling -- series sort stably and
two equal snapshots render byte-identically, which the hand-written
expected-text tests pin.
"""

from __future__ import annotations

import math
from typing import Mapping

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "escape_help_text",
    "escape_label_value",
    "format_label_pairs",
    "render_prometheus",
]

#: What an HTTP bridge in front of :func:`render_prometheus` should
#: declare (the classic Prometheus text format version).
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4"


def escape_label_value(value) -> str:
    """Escape one label value for the exposition format.

    The spec requires exactly three escapes inside a quoted label value
    -- backslash, double-quote, and newline -- and the backslash pass
    must run first or it would re-escape the escapes the other two
    introduce.  Values that need no escaping pass through without string
    rebuilding (the hot-path case: label values are almost always plain
    identifiers).
    """
    text = str(value)
    if "\\" in text or '"' in text or "\n" in text:
        text = (
            text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
    return text


def format_label_pairs(labels: Mapping[str, object]) -> str:
    """Canonical ``name="value"`` pair string for one label set.

    Label *names* sort lexicographically (the stable order both the
    registry storage keys and the rendered series rely on); values are
    escaped via :func:`escape_label_value`.  Empty label sets format to
    the empty string.
    """
    if not labels:
        return ""
    if len(labels) == 1:
        ((key, value),) = labels.items()
        return f'{key}="{escape_label_value(value)}"'
    return ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` line (backslash first, then newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return repr(float(bound))
    return repr(bound)


def _series_line(name: str, label_key: str, value) -> str:
    if label_key:
        return f"{name}{{{label_key}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _with_le(label_key: str, bound_text: str) -> str:
    le = f'le="{bound_text}"'
    return f"{label_key},{le}" if label_key else le


def render_prometheus(snapshot: dict) -> str:
    """Render one registry snapshot to Prometheus exposition text.

    Metric families are emitted in sorted name order and series in
    sorted label-key order (the canonical escaped pair strings of
    :func:`format_label_pairs`, compared lexicographically), so two
    equal snapshots render byte-identically -- the exposition analogue
    of the bit-exact merge contract.
    """
    lines: list[str] = []
    for kind, section in (
        ("counter", "counters"),
        ("gauge", "gauges"),
    ):
        for name in sorted(snapshot.get(section, {})):
            data = snapshot[section][name]
            help_text = data.get("help", "")
            if help_text:
                lines.append(f"# HELP {name} {escape_help_text(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for label_key in sorted(data["values"]):
                lines.append(
                    _series_line(name, label_key, data["values"][label_key])
                )
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        help_text = data.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {escape_help_text(help_text)}")
        lines.append(f"# TYPE {name} histogram")
        bounds = [_format_bound(float(bound)) for bound in data["buckets"]]
        for label_key in sorted(data["values"]):
            counts, total, count = data["values"][label_key]
            cumulative = 0
            for bound_text, bucket_count in zip(bounds, counts):
                cumulative += bucket_count
                lines.append(
                    _series_line(
                        f"{name}_bucket",
                        _with_le(label_key, bound_text),
                        cumulative,
                    )
                )
            lines.append(
                _series_line(
                    f"{name}_bucket", _with_le(label_key, "+Inf"), count
                )
            )
            lines.append(_series_line(f"{name}_sum", label_key, total))
            lines.append(_series_line(f"{name}_count", label_key, count))
    return "\n".join(lines) + "\n" if lines else ""
