"""Observability gateway: the HTTP face of the telemetry substrate.

Everything in ``repro.obs`` so far is in-process: registries snapshot,
tracers ring-buffer, monitors alarm, alert engines hold state.  The
gateway puts that state on a real port for the tools that actually run
fleets -- Prometheus scrapers, Kubernetes-style health probes, trace
collectors -- using nothing but the asyncio stdlib (no HTTP framework;
the protocol subset needed is tiny and the dependency budget is zero).

Endpoints
---------
``GET /metrics``
    Prometheus text exposition (``text/plain; version=0.0.4``).  The
    default provider renders the process registry; a server-attached or
    coordinator-backed gateway plugs in a fleet-merged provider.
``GET /healthz``
    Liveness JSON -- 200 while the process serves, 503 when the
    provider reports (or raises) otherwise.
``GET /readyz``
    Readiness JSON -- 200 only when the engine/pool behind the gateway
    is actually able to absorb work.
``GET /spans``
    OTLP/JSON export of the tracer ring (``resourceSpans`` shape, plus
    the ring's ``dropped`` count).
``GET /alerts``
    Current alert states.  With an attached
    :class:`~repro.obs.alerts.AlertEngine` each request runs one
    evaluation pass, so scrape cadence *is* evaluation cadence --
    exactly how Prometheus-style rule evaluation binds to scraping.

Providers are zero-argument callables and may be sync or async: the
server-attached gateway's providers are coroutines closing over the
sketch server's engine executor, so scrapes serialize with feeds (a
process-backend fleet's metric pipes are single-reader).  Responses are
always ``Connection: close`` -- scrapers open one connection per scrape
anyway, and it keeps the server loop-shutdown story trivial.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import json
import threading
from typing import Callable, Optional

from repro.obs.expo import EXPOSITION_CONTENT_TYPE, render_prometheus
from repro.obs.metrics import get_registry
from repro.obs.trace import export_otlp, get_tracer

__all__ = ["ObservabilityGateway"]

#: Counter of gateway HTTP requests, labelled by (known) path.
GATEWAY_REQUESTS_METRIC = "repro_gateway_requests_total"

_KNOWN_PATHS = frozenset(
    {"/metrics", "/healthz", "/readyz", "/spans", "/alerts"}
)

_REASONS = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_JSON_TYPE = "application/json"


async def _call_provider(provider):
    """Invoke a sync-or-async zero-argument provider."""
    result = provider()
    if inspect.isawaitable(result):
        result = await result
    return result


class ObservabilityGateway:
    """Minimal asyncio HTTP/1.1 server over pluggable telemetry providers.

    Parameters
    ----------
    host / port:
        Listen address; port 0 picks a free port (read ``gateway.port``
        after :meth:`start`).
    metrics_provider:
        Returns the Prometheus exposition text.  Defaults to rendering
        the process registry's snapshot.
    health_provider / ready_provider:
        Return ``(ok, payload_dict)``.  Defaults: always-live ``{"status":
        "ok"}`` and always-ready ``{"status": "ready"}``.  A provider
        that raises maps to a 503 carrying the error string -- probe
        failures must never take the gateway down with them.
    spans_provider:
        Returns the ``/spans`` JSON dict.  Defaults to
        :func:`repro.obs.trace.export_otlp` over the process tracer.
    alert_engine:
        Optional :class:`~repro.obs.alerts.AlertEngine`; each ``/alerts``
        request evaluates it once and serves its payload.  Mutually
        exclusive with ``alerts_provider``.
    alerts_provider:
        Returns the ``/alerts`` JSON dict directly (the server-attached
        gateway uses this to serve engine-thread-evaluated states).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_provider: Optional[Callable] = None,
        health_provider: Optional[Callable] = None,
        ready_provider: Optional[Callable] = None,
        spans_provider: Optional[Callable] = None,
        alert_engine=None,
        alerts_provider: Optional[Callable] = None,
    ) -> None:
        if alert_engine is not None and alerts_provider is not None:
            raise ValueError(
                "pass alert_engine or alerts_provider, not both"
            )
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._metrics = metrics_provider or (
            lambda: render_prometheus(get_registry().snapshot())
        )
        self._health = health_provider or (
            lambda: (True, {"status": "ok"})
        )
        self._ready = ready_provider or (
            lambda: (True, {"status": "ready"})
        )
        self._spans = spans_provider or (lambda: export_otlp(get_tracer()))
        if alert_engine is not None:
            def _evaluate():
                alert_engine.evaluate()
                return alert_engine.payload()

            self._alerts = _evaluate
        else:
            self._alerts = alerts_provider or (
                lambda: {"alerts": [], "firing": 0, "evaluated_at": None}
            )
        self._requests = get_registry().counter(
            GATEWAY_REQUESTS_METRIC,
            "HTTP requests served by the observability gateway",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "ObservabilityGateway":
        """Bind and start serving; resolves the port."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @contextlib.contextmanager
    def run_in_thread(self):
        """Host the gateway on a daemon-thread event loop (sync callers).

        The standalone spelling: a driver process that wants scrapes
        without running a sketch service.  Server-attached gateways are
        started by :class:`~repro.service.server.SketchServer` on its
        own loop instead (their providers must share its executor).
        """
        loop = asyncio.new_event_loop()
        started = threading.Event()
        stop_requested = asyncio.Event()
        failure: list[BaseException] = []

        async def _run() -> None:
            try:
                await self.start()
            except BaseException as exc:
                failure.append(exc)
                started.set()
                return
            started.set()
            await stop_requested.wait()
            await self.stop()

        def _main() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(_run())
            finally:
                loop.close()

        thread = threading.Thread(
            target=_main, name="obs-gateway", daemon=True
        )
        thread.start()
        started.wait()
        if failure:
            thread.join(timeout=5)
            raise failure[0]
        try:
            yield self
        finally:
            loop.call_soon_threadsafe(stop_requested.set)
            thread.join(timeout=30)

    # -- HTTP ---------------------------------------------------------------

    async def _respond(self, path: str) -> tuple[int, str, bytes]:
        """Resolve one GET/HEAD into (status, content type, body)."""
        if path == "/metrics":
            text = await _call_provider(self._metrics)
            return 200, EXPOSITION_CONTENT_TYPE, text.encode("utf-8")
        if path in ("/healthz", "/readyz"):
            provider = self._health if path == "/healthz" else self._ready
            try:
                ok, payload = await _call_provider(provider)
            except Exception as exc:
                ok, payload = False, {"status": "error", "error": str(exc)}
            body = json.dumps(payload).encode("utf-8")
            return (200 if ok else 503), _JSON_TYPE, body
        if path == "/spans":
            payload = await _call_provider(self._spans)
            return 200, _JSON_TYPE, json.dumps(payload).encode("utf-8")
        if path == "/alerts":
            payload = await _call_provider(self._alerts)
            return 200, _JSON_TYPE, json.dumps(payload).encode("utf-8")
        body = json.dumps({"error": f"no such endpoint {path}"})
        return 404, _JSON_TYPE, body.encode("utf-8")

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            # Drain headers (ignored: every response is Connection: close
            # and no endpoint takes a body).
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            path = target.split("?", 1)[0] or "/"
            self._requests.add(
                1, path=path if path in _KNOWN_PATHS else "other"
            )
            if method not in ("GET", "HEAD"):
                status, content_type, body = (
                    405,
                    _JSON_TYPE,
                    json.dumps({"error": "GET/HEAD only"}).encode("utf-8"),
                )
            else:
                try:
                    status, content_type, body = await self._respond(path)
                except Exception as exc:
                    status, content_type, body = (
                        500,
                        _JSON_TYPE,
                        json.dumps({"error": str(exc)}).encode("utf-8"),
                    )
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(
                head.encode("latin-1") + (b"" if method == "HEAD" else body)
            )
            await writer.drain()
        except (
            asyncio.TimeoutError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
