"""Test-support harnesses shipped with the library.

:mod:`repro.testing.faults` is the deterministic chaos-injection
harness: seeded fault plans, a frame-aware TCP chaos proxy, and worker
SIGKILL helpers.  It lives in the package (not under ``tests/``) so the
benchmark recorder and external integration suites can drive the same
certified fault schedules the unit tests pin.
"""

from repro.testing.faults import (
    ChaosProxy,
    FaultEvent,
    FaultPlan,
    inject_worker_kills,
    kill_worker,
)

__all__ = [
    "ChaosProxy",
    "FaultEvent",
    "FaultPlan",
    "inject_worker_kills",
    "kill_worker",
]
