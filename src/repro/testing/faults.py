"""Deterministic chaos injection for the fault-tolerance test suite.

Reproducibility is the whole point: a chaos run that cannot be replayed
is a flake generator, not a test.  Everything here derives from one
seeded :class:`FaultPlan` -- same seed, same parameters, same fault
schedule, byte for byte (``plan.digest()`` pins that in the tests) --
so a failing chaos run reproduces under the same seed and the passing
certificate means something.

Three layers:

:class:`FaultPlan`
    A seeded schedule of :class:`FaultEvent`\\ s: worker SIGKILLs at
    chunk boundaries and wire faults (connection resets, truncated
    frames, delayed frames, slow reads) at frame boundaries.
:class:`ChaosProxy`
    A frame-aware TCP proxy that sits between a client and a
    :class:`~repro.service.server.SketchServer` and applies the plan's
    wire faults at exactly the scheduled frame indices -- it parses the
    RSV1 framing on the client-to-server direction, so "truncate frame
    17" means frame 17, not "whatever bytes were in flight".
:func:`kill_worker` / :func:`inject_worker_kills` / :func:`inject_chunk_faults`
    SIGKILL a process-backend shard worker (resolving pids through the
    pool) and chunk-source wrappers that fire the plan's chunk-boundary
    faults (worker kills, and full ``server_crash`` events for the
    self-healing suite) on schedule.
:class:`ServerProcess`
    A whole :class:`~repro.service.server.SketchServer` hosted in a
    SIGKILL-able child process -- the ``server_crash`` fault's target.
    Unlike a worker kill (one shard dies, the server supervises the
    respawn), crashing a server process takes down its connections,
    its engine, and its state in one blow; recovery is the
    coordinator's job (migration or readmission), which is exactly
    what the self-healing tests certify.

The certification tests drive a sequenced client through the proxy at a
fleet whose workers get killed mid-ingest, then assert the final merged
snapshot is byte-identical to a serial engine fed the same stream --
supervised respawn plus exactly-once replay leaves no trace in the
state.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import random
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.service.protocol import MAGIC

__all__ = [
    "CHUNK_FAULT_KINDS",
    "ChaosProxy",
    "FaultEvent",
    "FaultPlan",
    "ServerProcess",
    "WIRE_FAULT_KINDS",
    "inject_chunk_faults",
    "inject_worker_kills",
    "kill_worker",
]

_HEADER = struct.Struct(">4sI")

#: Wire-fault kinds the proxy knows how to inject.
WIRE_FAULT_KINDS = ("conn_reset", "frame_truncate", "frame_delay", "slow_read")

#: Chunk-boundary fault kinds (fired by :func:`inject_chunk_faults`).
CHUNK_FAULT_KINDS = ("worker_kill", "server_crash")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is a chunk index for ``worker_kill`` / ``server_crash``
    events and a global client-to-server frame index for wire faults;
    ``target`` is the shard to kill (worker kills) or the server index
    to crash (server crashes); ``param`` is the fault's knob (delay
    seconds, slow-read duration).
    """

    at: int
    kind: str
    target: int = 0
    param: float = 0.0


class FaultPlan:
    """A seeded, fully deterministic fault schedule.

    Parameters
    ----------
    seed:
        Everything derives from this through one ``random.Random``.
    chunks:
        How many chunks the driven stream has; worker kills land on
        chunk boundaries in ``[1, chunks)``.
    frames:
        How many client-to-server frames the run is expected to carry;
        wire faults land on frame indices in ``[1, frames)``.  Replayed
        frames keep counting, so schedule faults well inside the
        fault-free frame count.
    worker_kills / wire_faults:
        How many of each to schedule.
    num_shards:
        Kill targets are drawn uniformly from this many shards.
    server_crashes / num_servers:
        Full-server SIGKILLs at chunk boundaries, targets drawn
        uniformly from ``num_servers`` servers.  Drawn *after* every
        other event so plans without server crashes keep their exact
        historical schedules (the pinned-digest tests rely on it).
    kinds:
        The wire-fault repertoire to draw from (defaults to all of
        :data:`WIRE_FAULT_KINDS`).
    delay:
        The ``param`` for delay/slow-read faults, seconds.
    """

    def __init__(
        self,
        seed: int,
        *,
        chunks: int,
        frames: int,
        worker_kills: int = 1,
        wire_faults: int = 3,
        num_shards: int = 2,
        kinds: Sequence[str] = WIRE_FAULT_KINDS,
        delay: float = 0.05,
        server_crashes: int = 0,
        num_servers: int = 1,
    ) -> None:
        for kind in kinds:
            if kind not in WIRE_FAULT_KINDS:
                raise ValueError(f"unknown wire-fault kind {kind!r}")
        if worker_kills and chunks < 2:
            raise ValueError("worker kills need a stream of at least 2 chunks")
        if wire_faults and frames < 2:
            raise ValueError("wire faults need a run of at least 2 frames")
        if server_crashes and chunks < 2:
            raise ValueError("server crashes need a stream of at least 2 chunks")
        self.seed = seed
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        if worker_kills:
            boundaries = rng.sample(
                range(1, chunks), min(worker_kills, chunks - 1)
            )
            for at in sorted(boundaries):
                events.append(
                    FaultEvent(
                        at=at,
                        kind="worker_kill",
                        target=rng.randrange(num_shards),
                    )
                )
        if wire_faults:
            positions = rng.sample(
                range(1, frames), min(wire_faults, frames - 1)
            )
            for at in sorted(positions):
                kind = kinds[rng.randrange(len(kinds))]
                events.append(
                    FaultEvent(
                        at=at,
                        kind=kind,
                        param=delay
                        if kind in ("frame_delay", "slow_read")
                        else 0.0,
                    )
                )
        # Server crashes draw last, behind a guard: a plan without them
        # consumes the exact RNG sequence it always did, so historical
        # schedules (and their pinned digests) are untouched.
        if server_crashes:
            boundaries = rng.sample(
                range(1, chunks), min(server_crashes, chunks - 1)
            )
            for at in sorted(boundaries):
                events.append(
                    FaultEvent(
                        at=at,
                        kind="server_crash",
                        target=rng.randrange(num_servers),
                    )
                )
        self.events: tuple[FaultEvent, ...] = tuple(events)

    def worker_kills(self) -> list[FaultEvent]:
        """The scheduled worker SIGKILLs, in chunk order."""
        return [e for e in self.events if e.kind == "worker_kill"]

    def server_crashes(self) -> list[FaultEvent]:
        """The scheduled full-server SIGKILLs, in chunk order."""
        return [e for e in self.events if e.kind == "server_crash"]

    def chunk_faults(self) -> list[FaultEvent]:
        """All chunk-boundary events (worker kills and server crashes),
        in chunk order."""
        return sorted(
            (e for e in self.events if e.kind in CHUNK_FAULT_KINDS),
            key=lambda e: e.at,
        )

    def wire_faults(self) -> dict[int, FaultEvent]:
        """The scheduled wire faults, keyed by global frame index."""
        return {
            e.at: e for e in self.events if e.kind in WIRE_FAULT_KINDS
        }

    def kinds(self) -> set[str]:
        """The distinct fault kinds this plan injects."""
        return {e.kind for e in self.events}

    def digest(self) -> str:
        """Schedule fingerprint -- same seed/parameters, same digest."""
        canon = ";".join(
            f"{e.at}:{e.kind}:{e.target}:{e.param:.6f}" for e in self.events
        )
        return hashlib.sha256(canon.encode()).hexdigest()


def _abort(sock: Optional[socket.socket]) -> None:
    """Close with an RST (SO_LINGER 0), not a graceful FIN."""
    if sock is None:
        return
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return b"".join(chunks)  # short read = EOF mid-frame
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ChaosProxy:
    """Frame-aware TCP chaos proxy for one sketch server.

    Clients connect to ``proxy.port`` instead of the server; the proxy
    forwards both directions, parsing RSV1 frames on the
    client-to-server direction and applying the plan's wire faults when
    the *global* frame counter (across all connections and reconnects,
    in arrival order) hits a scheduled index:

    ``conn_reset``
        The frame is dropped and both sides of the connection are
        aborted with an RST -- the client's next read or write fails.
    ``frame_truncate``
        The header plus half the payload reach the server, then both
        sides are aborted -- the server sees a mid-frame EOF
        (``ProtocolError``) and drops the connection; the in-flight
        feed is lost and must be replayed.
    ``frame_delay``
        The whole frame is forwarded after ``param`` seconds.
    ``slow_read``
        The frame trickles through in small pieces over ``param``
        seconds (total), exercising per-op timeouts without killing
        the connection.

    Deterministic given a plan and a single client: faults fire on
    exact frame indices.  With concurrent clients the interleaving
    chooses *which* client absorbs a fault, but the fault schedule
    itself -- how many, which kinds, at which global frames -- is still
    the plan's.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[dict[int, FaultEvent]] = None,
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.faults = dict(faults or {})
        self.frames_seen = 0
        self.faults_applied: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._pairs: list[tuple[socket.socket, socket.socket]] = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ChaosProxy":
        """Bind the listener and begin accepting; returns self, with
        ``port`` resolved (pass port=0 to let the OS pick one)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        self._listener = listener
        self.port = listener.getsockname()[1]
        accept = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        """Close the listener and every live relay; joins the threads."""
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            pairs = list(self._pairs)
        for downstream, upstream in pairs:
            _abort(downstream)
            _abort(upstream)
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- pumping ------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                _abort(downstream)
                continue
            downstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._pairs.append((downstream, upstream))
            c2s = threading.Thread(
                target=self._pump_frames,
                args=(downstream, upstream),
                name="chaos-c2s",
                daemon=True,
            )
            s2c = threading.Thread(
                target=self._pump_raw,
                args=(upstream, downstream),
                name="chaos-s2c",
                daemon=True,
            )
            c2s.start()
            s2c.start()
            self._threads.extend((c2s, s2c))

    def _next_fault(self) -> Optional[FaultEvent]:
        """Count one frame; pop and return its scheduled fault, if any."""
        with self._lock:
            self.frames_seen += 1
            fault = self.faults.pop(self.frames_seen, None)
            if fault is not None:
                self.faults_applied.append(fault)
            return fault

    def _pump_frames(
        self, downstream: socket.socket, upstream: socket.socket
    ) -> None:
        """Client-to-server direction, one RSV1 frame at a time."""
        try:
            while True:
                header = _recv_exact(downstream, _HEADER.size)
                if len(header) < _HEADER.size:
                    break
                magic, length = _HEADER.unpack(header)
                if magic != MAGIC:
                    # Not our framing: fall back to raw passthrough.
                    upstream.sendall(header)
                    self._pump_raw(downstream, upstream)
                    return
                payload = _recv_exact(downstream, length)
                short = len(payload) < length
                fault = self._next_fault()
                if fault is None or short:
                    upstream.sendall(header + payload)
                    if short:
                        break
                    continue
                if fault.kind == "conn_reset":
                    _abort(downstream)
                    _abort(upstream)
                    return
                if fault.kind == "frame_truncate":
                    upstream.sendall(header + payload[: length // 2])
                    _abort(downstream)
                    _abort(upstream)
                    return
                if fault.kind == "frame_delay":
                    time.sleep(fault.param)
                    upstream.sendall(header + payload)
                    continue
                if fault.kind == "slow_read":
                    blob = header + payload
                    pieces = 8
                    step = max(1, len(blob) // pieces)
                    pause = fault.param / pieces
                    for start in range(0, len(blob), step):
                        upstream.sendall(blob[start : start + step])
                        time.sleep(pause)
                    continue
                raise AssertionError(f"unhandled fault kind {fault.kind!r}")
        except OSError:
            pass
        finally:
            for sock in (downstream, upstream):
                try:
                    sock.close()
                except OSError:
                    pass

    @staticmethod
    def _pump_raw(source: socket.socket, sink: socket.socket) -> None:
        """Server-to-client direction: unmodified byte passthrough."""
        try:
            while True:
                chunk = source.recv(1 << 16)
                if not chunk:
                    break
                sink.sendall(chunk)
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass


# -- worker kills ------------------------------------------------------------


def _has_pool_surface(target) -> bool:
    return inspect.getattr_static(target, "worker_pids", None) is not None


def _resolve_pool(target):
    """Accept a pool, a ShardedAlgorithm, a ShardedStreamEngine, or a
    SketchServer and find the process pool underneath.

    The descent must never invoke dynamic attribute machinery:
    ``ShardedAlgorithm.__getattr__`` resolves unknown names -- including
    a plain ``hasattr(..., "worker_pids")`` probe -- against a live
    ``merged()`` view, which flushes the pool over its pipes.  A chaos
    thread doing that concurrently with the engine thread's scatter
    pipeline steals acks and corrupts the very accounting the kill is
    meant to exercise, so every probe here goes through
    :func:`inspect.getattr_static`, which reads class and instance
    dictionaries without triggering ``__getattr__`` or descriptors.
    """
    for attribute in ("engine", "algorithm", "_pool"):
        if _has_pool_surface(target):
            break
        inner = inspect.getattr_static(target, attribute, None)
        if inner is not None:
            target = inner
    if not _has_pool_surface(target):
        raise TypeError(
            f"{type(target).__name__} holds no process worker pool "
            "(worker kills need backend='process')"
        )
    return target


def kill_worker(target, shard: int, *, wait: float = 5.0) -> int:
    """SIGKILL the worker process owning ``shard``; returns its pid.

    Blocks (up to ``wait`` seconds) until the process is actually dead,
    so a test that kills at a chunk boundary knows the next scatter hits
    a corpse rather than racing the signal.
    """
    pool = _resolve_pool(target)
    pid = pool.worker_pids()[shard]
    os.kill(pid, signal.SIGKILL)
    process = pool._processes[shard]
    process.join(timeout=wait)
    if process.is_alive():  # pragma: no cover - SIGKILL cannot be ignored
        raise RuntimeError(f"worker {shard} (pid {pid}) survived SIGKILL")
    return pid


def inject_worker_kills(
    source: Iterable,
    plan: FaultPlan,
    killer: Callable[[FaultEvent], None],
) -> Iterator:
    """Yield ``source``'s chunks, firing the plan's kills on schedule.

    A kill scheduled ``at=k`` fires after chunk ``k-1`` is yielded and
    before chunk ``k`` -- i.e. on the chunk boundary, where the engines
    synchronize.  ``killer`` receives the :class:`FaultEvent` (typically
    ``lambda e: kill_worker(engine, e.target)``).
    """
    kills = {event.at: event for event in plan.worker_kills()}
    for index, chunk in enumerate(source):
        event = kills.pop(index, None)
        if event is not None and index > 0:
            killer(event)
        yield chunk


def inject_chunk_faults(
    source: Iterable,
    plan: FaultPlan,
    killer: Callable[[FaultEvent], None],
) -> Iterator:
    """Like :func:`inject_worker_kills`, for *all* chunk-boundary faults.

    Fires the plan's worker kills **and** server crashes at their
    scheduled boundaries (a fault ``at=k`` fires after chunk ``k-1`` and
    before chunk ``k``); ``killer`` receives each :class:`FaultEvent`
    and dispatches on ``event.kind`` -- typically a worker kill goes to
    :func:`kill_worker` and a ``server_crash`` to
    :meth:`ServerProcess.crash` on ``servers[event.target]``.
    """
    faults: dict[int, list[FaultEvent]] = {}
    for event in plan.chunk_faults():
        faults.setdefault(event.at, []).append(event)
    for index, chunk in enumerate(source):
        for event in faults.pop(index, ()):
            if index > 0:
                killer(event)
        yield chunk


# -- whole-server crashes -----------------------------------------------------


def _server_process_main(factory, host, port, conn, kwargs):
    """Child entry point: host one SketchServer until killed."""
    import asyncio

    from repro.service.server import SketchServer

    async def main() -> None:
        server = SketchServer(factory, host=host, port=port, **kwargs)
        try:
            await server.start()
        except Exception as exc:  # report instead of dying silently
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            return
        conn.send(("ok", server.port))
        await asyncio.Event().wait()  # serve until SIGKILL/terminate

    asyncio.run(main())


class ServerProcess:
    """A :class:`SketchServer` in a SIGKILL-able child process.

    The ``server_crash`` fault's target: where :func:`kill_worker` takes
    out one shard worker under a still-supervising server,
    :meth:`crash` takes out the *whole server* -- engine, supervisor,
    connections, state -- with an uncatchable signal, exactly like a
    machine loss.  :meth:`restart` brings a fresh, *empty* server back
    up on the same port, which is the comeback the coordinator's
    readmission path expects.

    Uses the ``fork`` start method so test-local factories (closures)
    survive the trip; ``start()`` blocks until the child reports its
    bound port over a pipe.  Use as a context manager or pair
    ``start()`` with ``stop()``.
    """

    def __init__(
        self,
        factory,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        start_timeout: float = 30.0,
        **server_kwargs,
    ) -> None:
        self.factory = factory
        self.host = host
        self.port: Optional[int] = port if port else None
        self._requested_port = port
        self.start_timeout = start_timeout
        self.server_kwargs = dict(server_kwargs)
        self._process = None
        self.crashes = 0

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def start(self) -> "ServerProcess":
        """Fork the child and wait for it to report its bound port."""
        import multiprocessing

        if self.alive:
            raise RuntimeError("server process already running")
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=False)
        port = self.port if self.port is not None else self._requested_port
        self._process = context.Process(
            target=_server_process_main,
            args=(self.factory, self.host, port, child_conn, self.server_kwargs),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        if not parent_conn.poll(self.start_timeout):
            self.stop()
            raise RuntimeError("server process did not come up in time")
        status, value = parent_conn.recv()
        parent_conn.close()
        if status != "ok":
            self.stop()
            raise RuntimeError(f"server process failed to start: {value}")
        self.port = int(value)
        return self

    def crash(self) -> int:
        """SIGKILL the server process; blocks until it is reaped.

        Returns the dead pid.  The port stays recorded so
        :meth:`restart` can bring a fresh empty server back on the same
        address -- clients and the coordinator keep their routing.
        """
        if not self.alive:
            raise RuntimeError("server process is not running")
        pid = self._process.pid
        os.kill(pid, signal.SIGKILL)
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - SIGKILL is final
            raise RuntimeError(f"server process {pid} survived SIGKILL")
        self.crashes += 1
        return pid

    def restart(self) -> "ServerProcess":
        """Start a fresh (empty) server on the recorded port."""
        return self.start()

    def stop(self) -> None:
        """Terminate the child (escalating to SIGKILL); idempotent."""
        process, self._process = self._process, None
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)

    def __enter__(self) -> "ServerProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
