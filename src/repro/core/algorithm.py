"""Streaming-algorithm base class and white-box state views.

Every algorithm in the library subclasses :class:`StreamAlgorithm` and
implements:

* ``process(update)`` -- consume one stream update;
* ``query()`` -- answer the fixed query ``Q`` of the game (its type depends
  on the problem: a number, a set of heavy hitters, ...);
* ``state_view()`` -- the *complete* internal state the white-box adversary
  observes: every data-structure field plus the randomness transcript;
* ``space_bits()`` -- idealized bit cost of the current state (see
  :mod:`repro.core.space`).

``state_view`` is a real API, not a debugging aid: the attack modules in
:mod:`repro.adversaries` consume it to mount white-box attacks (e.g., reading
the AMS sign matrix out of the view and streaming one of its kernel vectors).

Algorithms that answer *point queries* (``estimate(item)``) additionally
expose :meth:`StreamAlgorithm.estimate_batch` -- the query engine's batching
protocol, mirroring ``process_batch`` on the read side: a scalar-loop
default plus bit/float-identical vectorized overrides in every sketch
family, which is what lets adversarial game loops probe millions of
coordinates per round at numpy (or compiled-kernel) speed.

Mergeable sketches
------------------
The paper's sketches are linear or chunk-decomposable maps of the frequency
vector: CountMin/CountSketch/AMS tables add coordinate-wise, exact
F_p/L0 vectors add, KMV bottom-k sets union, and the SIS-L0 chunk sketches
add mod q.  :class:`MergeableSketch` captures that as a protocol --
``merge(other)`` absorbs a replica built *from the same construction
randomness* so that ``merge`` of shards fed disjoint sub-streams reproduces,
bit for bit, the state of one instance fed the whole stream.  This is what
the sharded engine (:mod:`repro.parallel`) is built on.

Serializable sketches
---------------------
:class:`SerializableSketch` extends the merge contract across process and
machine boundaries: ``snapshot()`` emits a canonical, versioned byte
representation of the sketch's *state* (never its construction randomness
-- that is pinned by the shared seed), headed by a construction
fingerprint derived from ``_merge_key()``.  ``restore(data)`` replays a
snapshot into an identically-constructed instance, and
``merge_snapshot(data)`` fans a remote replica's state in, both verifying
the fingerprint first -- so merging stays exact even when the replica
crossed a wire (:mod:`repro.distributed` builds the codec, the
process-parallel shard workers, and checkpoint/recovery on top of this).
Subclasses implement ``_snapshot_state()`` (plain-data dict of mutable
state) and ``_restore_state(state)`` (the inverse).
"""

from __future__ import annotations

import abc
import bisect
import copy
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.obs.metrics import SIZE_BUCKETS, get_registry as _get_obs_registry

# feed_batch is the one chokepoint every driving path shares -- the
# engine's chunk loop, serial shard scatters, and forked process-backend
# workers all pass through it -- so these per-batch instruments make
# sketch-level throughput backend-invariant: a process fleet's merged
# registry equals a serial run's bit-exactly (tests/test_obs.py pins it).
_obs_registry = _get_obs_registry()
_obs_batches = _obs_registry.counter(
    "repro_sketch_batches_total", "feed_batch calls, by sketch name"
)
_obs_updates = _obs_registry.counter(
    "repro_sketch_updates_total", "Updates absorbed via feed_batch, by sketch name"
)
_obs_batch_sizes = _obs_registry.histogram(
    "repro_sketch_batch_updates",
    "feed_batch sizes, by sketch name",
    buckets=SIZE_BUCKETS,
)
#: Backstop fold depth: pending batch sizes normally fold at snapshot
#: (scrape) time; a recorder that crosses this depth folds inline so the
#: buffer stays bounded even if nothing ever scrapes.
_PENDING_FOLD_AT = 8192


class _SketchSeries:
    """Per-sketch telemetry with lock-free recording, scrape-time folds.

    ``record`` is the chokepoint's hot path, so it takes no lock at all:
    it appends the batch size to a pending :class:`~collections.deque`
    (``append`` is GIL-atomic) and returns.  ``fold`` drains pending
    into the three shared series (batch counter, update counter, size
    histogram) under the registry lock; each popped size folds exactly
    once even with concurrent recorders or folders.  Snapshots fold
    first via the registry collector hook, so totals stay exact at
    every scrape/merge boundary -- the cost moves off the feed path,
    it doesn't vanish.
    """

    __slots__ = (
        "lock", "batch_values", "update_values", "size_values", "key",
        "buckets", "pending",
    )

    def __init__(self, name: str) -> None:
        batches = _obs_batches.bind(sketch=name)
        updates = _obs_updates.bind(sketch=name)
        sizes = _obs_batch_sizes.bind(sketch=name)
        self.lock = _obs_registry.lock
        self.batch_values = batches._values
        self.update_values = updates._values
        self.size_values = sizes._values
        self.key = batches.key
        self.buckets = sizes.instrument.buckets
        self.pending: deque = deque()

    def record(self, count: int) -> None:
        pending = self.pending
        pending.append(count)
        if len(pending) >= _PENDING_FOLD_AT:
            self.fold()

    def fold(self) -> None:
        pending = self.pending
        if not pending:
            return
        key = self.key
        buckets = self.buckets
        with self.lock:
            batches = 0
            total = 0
            series = counts = None
            last_count = None
            slot = 0
            while True:
                try:
                    count = pending.popleft()
                except IndexError:
                    break
                if series is None:
                    series = self.size_values.get(key)
                    if series is None:
                        series = [[0] * (len(buckets) + 1), 0.0, 0]
                        self.size_values[key] = series
                    counts = series[0]
                batches += 1
                total += count
                if count != last_count:
                    last_count = count
                    slot = bisect.bisect_left(buckets, count)
                counts[slot] += 1
            if not batches:
                return
            values = self.batch_values
            values[key] = values.get(key, 0) + batches
            values = self.update_values
            values[key] = values.get(key, 0) + total
            series[1] += total
            series[2] += batches


# Fused series per sketch name, cached at module scope (never on the
# instances: sketches get deep-copied and shipped across process
# boundaries, and registry handles must not ride along).
_obs_by_name: dict[str, _SketchSeries] = {}


def _obs_sketch_series(name: str) -> _SketchSeries:
    series = _obs_by_name.get(name)
    if series is None:
        series = _obs_by_name[name] = _SketchSeries(name)
    return series


def _obs_fold_pending() -> None:
    for series in list(_obs_by_name.values()):
        series.fold()


def _obs_discard_pending() -> None:
    for series in list(_obs_by_name.values()):
        series.pending.clear()


_obs_registry.add_collector(_obs_fold_pending, _obs_discard_pending)

from repro.core.randomness import RandomDraw, WitnessedRandom
from repro.core.stream import Update

__all__ = [
    "StateView",
    "StreamAlgorithm",
    "DeterministicAlgorithm",
    "MergeableSketch",
    "SerializableSketch",
]


@dataclass(frozen=True)
class StateView:
    """A snapshot of everything the white-box adversary can see.

    Attributes
    ----------
    fields:
        All internal data-structure contents, keyed by descriptive names.
        Values should be plain *comparable* data (ints, tuples, dicts,
        digest strings); the adversary may inspect them arbitrarily.
        Large array state (the CountMin/CountSketch tables) rides as a
        ``sha256`` content fingerprint (``table_digest``) rather than a
        per-round tuple materialization -- the adversary loses nothing
        it could not already derive (every cell is reconstructible from
        the stream history plus the hash parameters in the same view,
        and the in-repo attacks read only those parameters), while
        equality comparisons between views stay exact.
    randomness:
        The full transcript of random draws made so far.
    """

    fields: Mapping[str, Any]
    randomness: tuple[RandomDraw, ...] = ()

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def __contains__(self, key: str) -> bool:
        return key in self.fields


class StreamAlgorithm(abc.ABC):
    """Base class for one-pass streaming algorithms in the white-box game.

    Subclasses that use randomness must draw it exclusively through
    ``self.random`` (a :class:`WitnessedRandom`) so the transcript the
    adversary sees is complete.  Deterministic algorithms may ignore it.
    """

    #: human-readable name used in experiment tables
    name: str = "stream-algorithm"

    def __init__(self, seed: int = 0) -> None:
        self.random = WitnessedRandom(seed=seed)
        self.updates_processed = 0

    # -- the streaming interface ----------------------------------------

    @abc.abstractmethod
    def process(self, update: Update) -> None:
        """Consume one stream update."""

    @abc.abstractmethod
    def query(self) -> Any:
        """Answer the game's fixed query on the stream seen so far."""

    @abc.abstractmethod
    def space_bits(self) -> int:
        """Idealized bit cost of the current state."""

    # -- white-box exposure ----------------------------------------------

    def state_view(self) -> StateView:
        """Full white-box snapshot: internal fields + randomness transcript.

        The default implementation exposes ``_state_fields()`` plus the
        transcript; subclasses normally override only ``_state_fields``.
        """
        return StateView(
            fields=self._state_fields(), randomness=self.random.transcript
        )

    def _state_fields(self) -> dict[str, Any]:
        """Internal data-structure contents; override in subclasses."""
        return {"updates_processed": self.updates_processed}

    def process_batch(self, items, deltas) -> None:
        """Consume a batch of updates ``(items[i], deltas[i])`` at once.

        The batching contract (see :mod:`repro.core.engine`): the final
        internal state, every estimate, and the randomness transcript must be
        *identical* to feeding the same updates one at a time through
        :meth:`process`.  The default implementation guarantees this by
        looping; array-backed sketches override it with numpy-vectorized
        scatter updates, which is equivalent because their update rules are
        commutative integer additions that draw no randomness.

        ``items`` and ``deltas`` are equal-length sequences (lists or numpy
        integer arrays).
        """
        for item, delta in zip(items, deltas):
            self.process(Update(int(item), int(delta)))

    def estimate_batch(self, items) -> np.ndarray:
        """Batched point queries: ``array([estimate(i) for i in items])``.

        The read-side twin of :meth:`process_batch`.  The batching
        contract is the same: overrides must return values
        *bit/float-identical* to calling the algorithm's scalar
        ``estimate`` once per probe item -- same integers, same float
        roundings, same tie resolutions -- so a game, experiment, or
        adversary that switches to the batched path observes exactly the
        answers the per-item path would have produced
        (``tests/test_query_engine.py`` pins this per family).

        The default loops the scalar path (converting each probe to a
        Python int so arbitrary-precision arithmetic is preserved);
        array-backed sketches override it with fused hash+gather kernels
        (:mod:`repro.core.kernels`) or vectorized dict-to-array lookups.
        Algorithms without a point ``estimate`` raise :class:`TypeError`.
        """
        estimate = getattr(self, "estimate", None)
        if estimate is None:
            raise TypeError(
                f"{type(self).__name__} has no point estimate to batch"
            )
        values = [estimate(int(item)) for item in items]
        if not values:
            return np.empty(0, dtype=np.int64)
        return np.asarray(values)

    # -- conveniences -------------------------------------------------------

    def feed(self, update: Update) -> None:
        """Process an update and maintain the position counter."""
        self.process(update)
        self.updates_processed += 1

    def feed_batch(self, items, deltas) -> None:
        """Process a batch and maintain the position counter."""
        count = len(items)
        if count != len(deltas):
            raise ValueError(
                f"items/deltas length mismatch: {count} != {len(deltas)}"
            )
        self.process_batch(items, deltas)
        self.updates_processed += count
        if _obs_registry.enabled:
            _obs_sketch_series(self.name).record(count)

    def consume(self, updates) -> "StreamAlgorithm":
        """Feed a whole iterable of updates; returns self for chaining."""
        for update in updates:
            self.feed(update)
        return self


class SerializableSketch(abc.ABC):
    """Protocol for sketches whose state crosses process/machine boundaries.

    The wire contract
    -----------------
    ``snapshot()`` returns a canonical, versioned byte string: a header
    carrying the class name and a digest of the construction fingerprint
    (``_merge_key()`` -- parameters plus construction randomness), followed
    by a deterministic encoding of ``_snapshot_state()``.  ``restore(data)``
    replays such a snapshot into ``self``, *replacing* its mutable state;
    it requires ``self`` to be an identically-constructed instance and
    raises :class:`repro.distributed.codec.FingerprintMismatch` otherwise.
    ``merge_snapshot(data)`` absorbs a remote replica's state without
    disturbing local state -- the serialized form of
    :meth:`MergeableSketch.merge`, and the primitive multi-host fan-in is
    built from.

    Only mutable state is serialized.  Construction randomness (hash
    parameters, sign seeds, SIS matrices) is never on the wire: it is
    reproduced by constructing the twin from the shared seed, and the
    fingerprint check proves both sides agree before any state moves.

    Subclasses implement :meth:`_snapshot_state` (a dict of plain data --
    ints of any size, floats, strings, bytes, tuples, dicts, int64/object
    ndarrays) and :meth:`_restore_state` (its inverse); the codec lives in
    :mod:`repro.distributed.codec`.
    """

    def snapshot(self) -> bytes:
        """Canonical wire-format snapshot of the current state."""
        from repro.distributed.codec import snapshot_sketch

        return snapshot_sketch(self)

    def restore(self, data: bytes) -> "SerializableSketch":
        """Replace this instance's state with a snapshot's (verified).

        Returns ``self`` for chaining.  The randomness transcript is
        untouched: construction draws already happened identically on both
        sides (the fingerprint proves it), and no mergeable sketch draws
        randomness while processing.
        """
        from repro.distributed.codec import restore_sketch

        return restore_sketch(self, data)

    def merge_snapshot(self, data: bytes) -> None:
        """Fan a serialized replica's state into this instance (verified).

        Equivalent to ``self.merge(replica)`` where ``replica`` is the
        instance the snapshot was taken from -- bit for bit, because the
        codec round-trips state exactly and the fingerprint check enforces
        shared construction randomness.
        """
        from repro.distributed.codec import restore_sketch

        twin = copy.deepcopy(self)
        restore_sketch(twin, data)
        self.merge(twin)  # type: ignore[attr-defined]  # MergeableSketch

    @abc.abstractmethod
    def _snapshot_state(self) -> dict:
        """All mutable state as a plain-data dict (codec-encodable)."""

    @abc.abstractmethod
    def _restore_state(self, state: Mapping[str, Any]) -> None:
        """Replace mutable state from a decoded :meth:`_snapshot_state`."""


class MergeableSketch(SerializableSketch):
    """Protocol for sketches whose shard replicas combine exactly.

    The merge contract
    ------------------
    Two instances are *mergeable* when they were constructed with identical
    parameters and identical construction randomness (same seed), so their
    hash functions / sign vectors / SIS matrices coincide.  For such twins,
    ``a.merge(b)`` must leave ``a`` in exactly the state one instance would
    hold after processing ``a``'s updates followed by ``b``'s -- same data
    structures, same estimates, same ``space_bits()``.  Because every
    mergeable sketch in this library draws randomness only at construction,
    the randomness transcripts of the twins are already identical and merging
    leaves them untouched.

    Subclasses implement :meth:`_merge_key` (the construction fingerprint
    compatibility is checked against) and :meth:`_merge_state` (the actual
    state combination); the template methods here add the type/key checks
    and position accounting.
    """

    def merge(self, other: "MergeableSketch") -> None:
        """Absorb ``other``'s state into ``self`` (``self`` += ``other``)."""
        self._check_mergeable(other)
        self._merge_state(other)
        self.updates_processed += other.updates_processed

    def merge_batch(self, others: Iterable["MergeableSketch"]) -> None:
        """Absorb a sequence of replicas (shard fan-in)."""
        for other in others:
            self.merge(other)

    def _check_mergeable(self, other: "MergeableSketch") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if self._merge_key() != other._merge_key():
            raise ValueError(
                f"{type(self).__name__} replicas disagree on construction "
                "parameters/randomness; shards must be built from one shared seed"
            )

    @abc.abstractmethod
    def _merge_key(self) -> tuple:
        """Construction fingerprint: parameters + construction randomness."""

    @abc.abstractmethod
    def _merge_state(self, other: "MergeableSketch") -> None:
        """Combine ``other``'s data structures into ``self`` (both verified
        compatible)."""


class DeterministicAlgorithm(StreamAlgorithm):
    """Marker base for deterministic algorithms.

    Deterministic algorithms are trivially robust in the white-box model
    (Section 1.1.1): there is no randomness for the adversary to exploit.
    The class removes access to random draws so determinism is enforced, not
    just asserted.
    """

    def __init__(self) -> None:
        super().__init__(seed=0)
        # Replace the random source with one that refuses to draw.
        self.random = _ForbiddenRandom()


class _ForbiddenRandom(WitnessedRandom):
    """A random source that raises on any draw (determinism enforcement)."""

    def __init__(self) -> None:
        super().__init__(seed=0)

    def _refuse(self, *args, **kwargs):
        raise RuntimeError("deterministic algorithm attempted a random draw")

    bit = bits = randint = randrange = random = _refuse
    bernoulli = binomial = geometric = choice = sign = shuffle = spawn = _refuse
