"""Adversary interfaces for the white-box game.

The game of Section 1 gives the adversary, before it chooses update
``u_{t+1}``: all previous updates, all previous internal states, all previous
randomness, and all previous outputs.  :class:`WhiteBoxAdversary` receives
exactly that through :class:`AdversaryView`.

Adversaries may be *computationally bounded* (Theorem 1.2's ``T``-time
adversaries, Assumption 2.17's polynomial-time adversaries): the base class
carries an operation budget that attack implementations debit through
:meth:`WhiteBoxAdversary.spend`; exhausting it ends the attack.  This makes
"robust against T-time-bounded adversaries" an executable statement.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.algorithm import StateView
from repro.core.stream import Update

__all__ = [
    "AdversaryView",
    "BudgetExhausted",
    "WhiteBoxAdversary",
    "ObliviousAdversary",
    "BlackBoxAdversary",
]


class BudgetExhausted(RuntimeError):
    """Raised when a bounded adversary runs out of computation budget."""


@dataclass(frozen=True)
class AdversaryView:
    """Everything the white-box adversary knows entering round ``t+1``."""

    round_index: int
    updates: tuple[Update, ...]
    states: tuple[StateView, ...]
    outputs: tuple[Any, ...]

    @property
    def latest_state(self) -> Optional[StateView]:
        return self.states[-1] if self.states else None

    @property
    def latest_output(self) -> Any:
        return self.outputs[-1] if self.outputs else None


class WhiteBoxAdversary(abc.ABC):
    """Base class for adversaries in the white-box game.

    Parameters
    ----------
    budget:
        Maximum number of abstract computation steps the adversary may spend
        over the whole game (``None`` = unbounded).  Attack code calls
        :meth:`spend` for its expensive operations; the game runner treats
        :class:`BudgetExhausted` as the adversary giving up.
    """

    name: str = "white-box-adversary"

    #: Whether this adversary's choices depend on observed states/outputs.
    #: The safe default is ``True``; non-adaptive adversaries override it to
    #: ``False`` so :class:`repro.core.engine.StreamEngine` may batch their
    #: games (adaptive games must see a state view after every update and
    #: automatically degrade to chunk size 1).
    adaptive: bool = True

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive or None, got {budget}")
        self.budget = budget
        self.spent = 0

    @abc.abstractmethod
    def next_update(self, view: AdversaryView) -> Optional[Update]:
        """Choose the next stream update (or ``None`` to end the stream)."""

    def spend(self, operations: int = 1) -> None:
        """Debit computation budget; raises :class:`BudgetExhausted`."""
        self.spent += operations
        if self.budget is not None and self.spent > self.budget:
            raise BudgetExhausted(
                f"{self.name} exceeded its budget of {self.budget} operations"
            )

    @property
    def is_bounded(self) -> bool:
        return self.budget is not None


class ObliviousAdversary(WhiteBoxAdversary):
    """A non-adaptive "adversary": replays a fixed update sequence.

    This is the classical oblivious streaming model embedded in the game, and
    the natural negative control in robustness experiments.
    """

    name = "oblivious"
    adaptive = False

    def __init__(self, updates: Sequence[Update]) -> None:
        super().__init__(budget=None)
        self._updates = list(updates)

    def next_update(self, view: AdversaryView) -> Optional[Update]:
        if view.round_index >= len(self._updates):
            return None
        return self._updates[view.round_index]

    def committed_updates(
        self, start: int, count: int
    ) -> Sequence[Update]:
        """The committed stream slice ``[start, start + count)``.

        The engine's batched game loop reads the fixed stream directly
        instead of round-tripping through ``next_update`` -- legitimate
        precisely because an oblivious adversary committed in advance.
        """
        return self._updates[start : start + count]


class BlackBoxAdversary(WhiteBoxAdversary):
    """Adapter restricting a white-box adversary's view to outputs only.

    Wraps an adaptive strategy that may use previous updates and previous
    *outputs* but not internal states or randomness -- the black-box
    adversarial model of [BJWY21] and others, included for the experiments
    that separate the two models.
    """

    name = "black-box"

    def next_update(self, view: AdversaryView) -> Optional[Update]:
        censored = AdversaryView(
            round_index=view.round_index,
            updates=view.updates,
            states=(),
            outputs=view.outputs,
        )
        return self.next_update_black_box(censored)

    @abc.abstractmethod
    def next_update_black_box(self, view: AdversaryView) -> Optional[Update]:
        """Adaptive choice based on outputs alone."""
