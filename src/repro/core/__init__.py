"""Core framework: streams, the white-box game, randomness, space accounting."""

from repro.core.adversary import (
    AdversaryView,
    BlackBoxAdversary,
    BudgetExhausted,
    ObliviousAdversary,
    WhiteBoxAdversary,
)
from repro.core.algorithm import (
    DeterministicAlgorithm,
    MergeableSketch,
    SerializableSketch,
    StateView,
    StreamAlgorithm,
)
from repro.core.engine import DEFAULT_CHUNK_SIZE, StreamEngine
from repro.core.kernels import native_kernels_available, scatter_add
from repro.core.game import GameResult, GroundTruth, RoundRecord, frequency_truth, run_game
from repro.core.randomness import RandomDraw, WitnessedRandom
from repro.core.space import (
    bits_for_float,
    bits_for_int,
    bits_for_range,
    bits_for_signed_int,
    bits_for_universe,
    log2_ceil,
    loglog_bits,
)
from repro.core.stream import (
    FrequencyVector,
    Update,
    barrett_mod,
    linear_hash_rows,
    stream_from_items,
    updates_from_arrays,
    updates_to_arrays,
)

__all__ = [
    "AdversaryView",
    "BlackBoxAdversary",
    "BudgetExhausted",
    "DEFAULT_CHUNK_SIZE",
    "DeterministicAlgorithm",
    "FrequencyVector",
    "GameResult",
    "GroundTruth",
    "MergeableSketch",
    "ObliviousAdversary",
    "RandomDraw",
    "RoundRecord",
    "SerializableSketch",
    "StateView",
    "StreamAlgorithm",
    "StreamEngine",
    "Update",
    "WhiteBoxAdversary",
    "WitnessedRandom",
    "barrett_mod",
    "bits_for_float",
    "bits_for_int",
    "bits_for_range",
    "bits_for_signed_int",
    "bits_for_universe",
    "frequency_truth",
    "linear_hash_rows",
    "log2_ceil",
    "loglog_bits",
    "native_kernels_available",
    "run_game",
    "scatter_add",
    "stream_from_items",
    "updates_from_arrays",
    "updates_to_arrays",
]
