"""Stream updates, frequency vectors, and ground-truth oracles.

The paper's streams define an underlying dataset through updates
``u_1, ..., u_m``.  For frequency problems each update touches one coordinate
of a frequency vector ``f`` over universe ``[n]``; insertion-only streams use
``delta = +1`` while turnstile streams allow arbitrary integer deltas
(Section 2.3 and Remark 2.23 explicitly treat turnstile updates).

:class:`FrequencyVector` is the exact ground truth used by oracles and tests:
it tracks ``f`` as a sparse dict plus ``L1 = ||f||_1`` and the stream length,
and exposes the norms and moments the paper studies (``F_p``, ``L_p``,
``L_0``, heavy hitters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Update", "FrequencyVector", "stream_from_items"]


@dataclass(frozen=True)
class Update:
    """One stream update: add ``delta`` to coordinate ``item``.

    ``item`` is an integer in ``[0, n)`` (the paper writes ``[n]``; we use
    zero-based indices throughout).  ``delta = +1`` for insertion-only
    streams; turnstile streams allow any integer, including negatives.
    """

    item: int
    delta: int = 1

    def __post_init__(self) -> None:
        if self.item < 0:
            raise ValueError(f"item must be non-negative, got {self.item}")


def stream_from_items(items: Iterable[int]) -> Iterator[Update]:
    """Wrap a sequence of item identifiers as unit-insertion updates."""
    for item in items:
        yield Update(item, 1)


class FrequencyVector:
    """Exact frequency vector over universe ``[0, n)``.

    Serves as the ground-truth oracle in white-box games and as the reference
    implementation for every estimator in the library.

    Parameters
    ----------
    universe_size:
        ``n``; updates must name items below this bound.
    allow_negative:
        If ``False`` (strict turnstile), an update driving a coordinate
        negative raises :class:`ValueError`.  The paper's L0 algorithm only
        needs ``||f||_inf <= poly(n)`` at the end, so general turnstile
        streams set this to ``True``.
    """

    def __init__(self, universe_size: int, allow_negative: bool = True) -> None:
        if universe_size <= 0:
            raise ValueError(f"universe_size must be positive, got {universe_size}")
        self.universe_size = universe_size
        self.allow_negative = allow_negative
        self._counts: dict[int, int] = {}
        self._length = 0

    # -- updates --------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one update, maintaining sparsity (zeros are evicted)."""
        if update.item >= self.universe_size:
            raise ValueError(
                f"item {update.item} outside universe [0, {self.universe_size})"
            )
        new_value = self._counts.get(update.item, 0) + update.delta
        if new_value < 0 and not self.allow_negative:
            raise ValueError(
                f"update would drive item {update.item} negative in a strict stream"
            )
        if new_value == 0:
            self._counts.pop(update.item, None)
        else:
            self._counts[update.item] = new_value
        self._length += 1

    def extend(self, updates: Iterable[Update]) -> None:
        """Apply a sequence of updates."""
        for update in updates:
            self.apply(update)

    # -- queries ----------------------------------------------------------

    def __getitem__(self, item: int) -> int:
        return self._counts.get(item, 0)

    def __len__(self) -> int:
        """Number of updates applied so far (the stream position ``t``)."""
        return self._length

    @property
    def support(self) -> frozenset[int]:
        return frozenset(self._counts)

    def items(self) -> Iterator[tuple[int, int]]:
        """Sorted (item, frequency) pairs of the support."""
        return iter(sorted(self._counts.items()))

    def l0(self) -> int:
        """``F_0 = L_0``: number of nonzero coordinates."""
        return len(self._counts)

    def l1(self) -> int:
        """``||f||_1`` (sum of absolute frequencies)."""
        return sum(abs(v) for v in self._counts.values())

    def fp_moment(self, p: float) -> float:
        """``F_p(f) = sum |f_k|^p`` (``F_0`` counts nonzeros)."""
        if p < 0:
            raise ValueError(f"p must be >= 0, got {p}")
        if p == 0:
            return float(self.l0())
        return float(sum(abs(v) ** p for v in self._counts.values()))

    def lp_norm(self, p: float) -> float:
        """``L_p = F_p^{1/p}`` for ``p > 0``; ``L_0`` for ``p = 0``."""
        if p == 0:
            return float(self.l0())
        return self.fp_moment(p) ** (1.0 / p)

    def heavy_hitters(self, threshold: float, p: float = 1.0) -> frozenset[int]:
        """All items with ``|f_k| >= threshold * L_p``.

        With ``p = 1`` this is the epsilon-L1-heavy-hitters ground truth of
        Theorem 1.1 (the paper states ``f_i > eps * L1``; we use ``>=`` with
        an explicit threshold so callers control strictness via epsilon).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        bar = threshold * self.lp_norm(p)
        return frozenset(k for k, v in self._counts.items() if abs(v) >= bar)

    def inner_product(self, other: "FrequencyVector") -> int:
        """``<f, g>`` between two exact vectors."""
        if len(self._counts) > len(other._counts):
            return other.inner_product(self)
        return sum(v * other[k] for k, v in self._counts.items())

    def to_dense(self) -> list[int]:
        """Dense list representation (for small universes / tests)."""
        dense = [0] * self.universe_size
        for item, value in self._counts.items():
            dense[item] = value
        return dense

    def copy(self) -> "FrequencyVector":
        """Deep copy of the vector (oracle snapshots in games)."""
        clone = FrequencyVector(self.universe_size, self.allow_negative)
        clone._counts = dict(self._counts)
        clone._length = self._length
        return clone

    def __repr__(self) -> str:
        return (
            f"FrequencyVector(n={self.universe_size}, length={self._length}, "
            f"support={self.l0()})"
        )
