"""Stream updates, frequency vectors, and ground-truth oracles.

The paper's streams define an underlying dataset through updates
``u_1, ..., u_m``.  For frequency problems each update touches one coordinate
of a frequency vector ``f`` over universe ``[n]``; insertion-only streams use
``delta = +1`` while turnstile streams allow arbitrary integer deltas
(Section 2.3 and Remark 2.23 explicitly treat turnstile updates).

:class:`FrequencyVector` is the exact ground truth used by oracles and tests:
it tracks ``f`` as a sparse dict plus ``L1 = ||f||_1`` and the stream length,
and exposes the norms and moments the paper studies (``F_p``, ``L_p``,
``L_0``, heavy hitters).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Update",
    "FrequencyVector",
    "stream_from_items",
    "updates_to_arrays",
    "updates_from_arrays",
    "aggregate_batch",
    "add_tables_with_promotion",
    "barrett_mod",
    "linear_hash_rows",
    "lookup_counters_batch",
    "table_fingerprint",
    "INT64_HASH_BOUND",
    "INT64_SAFE_MASS",
]

#: ``a * item + b`` stays inside int64 when both ``a`` and ``item`` are below
#: this bound (product < 9e18 < 2^63).  Shared by every sketch whose
#: vectorized path evaluates linear hashes in int64.
INT64_HASH_BOUND = 3_000_000_000

#: Cumulative |delta| mass above which int64 cell accumulation could wrap;
#: structures holding int64 counters promote to exact (object) arithmetic
#: once the mass they have absorbed reaches this.
INT64_SAFE_MASS = 2**62


def barrett_mod(values: np.ndarray, modulus: int) -> np.ndarray:
    """``values % modulus`` through the multiply+shift division lowering.

    Integer remainder (``%``) on int64 arrays is the documented bottleneck
    of the batched CountMin/CountSketch hash ``(a*x + b) % p % w``: numpy
    lowers *floor division* by a scalar to a Barrett-style multiply+shift
    (libdivide), but the remainder ufunc takes the slow hardware-division
    path -- on this tree ``x // p`` runs ~4x faster than ``x % p``.  So
    the fast remainder is the identity ``r = x - (x // p) * p``, which
    routes the division through the optimized quotient and finishes with
    one in-place multiply and a subtract.  Exact for every int64 input
    (numpy's ``//`` is floor division, matching ``%``'s sign convention);
    ~2x faster than ``%`` at the engine's cache-resident chunk size.
    The intermediate ``(values // modulus) * modulus`` lies between
    ``values - modulus`` and ``values + modulus``, so it cannot overflow
    for any input ``%`` itself could handle.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    quotient = values // modulus
    quotient *= modulus
    return values - quotient


def linear_hash_rows(
    items: np.ndarray, a: int, b: int, prime: int, width: int
) -> np.ndarray:
    """Vectorized ``((a * items + b) mod prime) mod width``, division-free.

    The shared row-hash kernel of the batched CountMin/CountSketch paths.
    Bit-identical to the ``% prime % width`` formulation (enforced by
    ``tests/test_fast_hash_reduction.py``) but replaces both remainder
    ufuncs with :func:`barrett_mod` reductions.  Caller contract (already
    guaranteed by the sketches' ``_vectorizable`` gate):
    ``0 <= a, b < prime < INT64_HASH_BOUND`` and ``0 <= items < prime``,
    so ``a * items + b < prime^2 + prime < 2^63``.
    """
    return barrett_mod(barrett_mod(a * items + b, prime), width)


@dataclass(frozen=True)
class Update:
    """One stream update: add ``delta`` to coordinate ``item``.

    ``item`` is an integer in ``[0, n)`` (the paper writes ``[n]``; we use
    zero-based indices throughout).  ``delta = +1`` for insertion-only
    streams; turnstile streams allow any integer, including negatives.
    """

    item: int
    delta: int = 1

    def __post_init__(self) -> None:
        if self.item < 0:
            raise ValueError(f"item must be non-negative, got {self.item}")


def stream_from_items(items: Iterable[int]) -> Iterator[Update]:
    """Wrap a sequence of item identifiers as unit-insertion updates."""
    for item in items:
        yield Update(item, 1)


def updates_to_arrays(updates: Sequence[Update]) -> tuple[np.ndarray, np.ndarray]:
    """Split a sequence of updates into ``(items, deltas)`` int64 arrays.

    Raises :class:`OverflowError` if any item or delta exceeds int64 -- the
    engine catches that and falls back to the per-update path, so kernel
    attacks streaming huge rational coefficients keep exact arithmetic.
    """
    n = len(updates)
    items = np.fromiter((u.item for u in updates), dtype=np.int64, count=n)
    deltas = np.fromiter((u.delta for u in updates), dtype=np.int64, count=n)
    return items, deltas


def updates_from_arrays(items, deltas) -> list[Update]:
    """Inverse of :func:`updates_to_arrays` (tests / per-update fallbacks)."""
    return [Update(int(i), int(d)) for i, d in zip(items, deltas)]


def aggregate_batch(
    items, deltas, universe_size: int | None = None
) -> tuple[list[int], list[int]]:
    """Aggregate a batch's per-item deltas *exactly*.

    Returns ``(unique_items, aggregated_deltas)`` as Python int lists --
    the one batching primitive shared by every structure whose update rule
    is a commutative per-coordinate addition (frequency vectors, exact
    L0/F_p, AMS rows, SIS chunk sketches).  Validates ``items >= 0`` (and
    ``< universe_size`` when given).  Summation runs in int64 numpy when the
    aggregated totals provably fit, and falls back to exact Python
    aggregation otherwise, so the result never wraps.
    """
    items = np.asarray(items, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.int64)
    if items.shape != deltas.shape:
        raise ValueError(
            f"items/deltas length mismatch: {items.size} != {deltas.size}"
        )
    if items.size == 0:
        return [], []
    if int(items.min()) < 0:
        raise ValueError("item must be non-negative")
    if universe_size is not None and int(items.max()) >= universe_size:
        raise ValueError(
            f"item {int(items.max())} outside universe [0, {universe_size})"
        )
    unique, inverse = np.unique(items, return_inverse=True)
    # Exact Python bound on any aggregated total (abs() in Python avoids the
    # int64-min wraparound of np.abs).
    dmin, dmax = int(deltas.min()), int(deltas.max())
    max_abs = max(abs(dmin), abs(dmax))
    if max_abs * items.size < INT64_SAFE_MASS:
        from repro.core import kernels

        aggregated = np.zeros(len(unique), dtype=np.int64)
        # Constant deltas (unit insertions above all) take the fused
        # unweighted-bincount path inside scatter_add.
        kernels.scatter_add(
            aggregated, inverse, dmin if dmin == dmax else deltas
        )
        return unique.tolist(), aggregated.tolist()
    totals = [0] * len(unique)
    for index, delta in zip(inverse.tolist(), deltas.tolist()):
        totals[index] += delta
    return unique.tolist(), totals


def table_fingerprint(table: np.ndarray) -> str:
    """Content fingerprint of a sketch table for white-box state views.

    ``sha256`` over dtype, shape, and the raw cell buffer: tables holding
    equal values fingerprint equal, any mutated cell changes the digest,
    and a ``state_view()`` snapshot no longer materializes
    ``O(depth * width)`` Python tuples -- adaptive games snapshot the
    state *every round*, so this runs on the per-round hot path.  The
    fingerprint is a commitment, not a redaction: the white-box model
    still exposes the full table (``sketch.table``, and the hash
    parameters in the same view let the adversary reconstruct every
    cell's address); the view just stops paying quadratic materialization
    for it.  Equality is over *values*, matching the tuple
    materialization this replaces: a preemptively promoted object table
    whose cells still fit int64 hashes identically to its int64 twin
    (the absorbed-mass promotion is a conservative bound, so the loop
    and batch paths may promote at different points while holding equal
    cells); only tables with genuinely beyond-int64 cells hash their
    repr'd values (their raw buffer would be interpreter pointers).
    """
    payload_dtype = table.dtype.str
    if table.dtype == object:
        try:
            canonical = table.astype(np.int64)
        except (OverflowError, TypeError, ValueError):
            payload = repr(table.tolist()).encode()
        else:
            payload = canonical.tobytes()
            payload_dtype = canonical.dtype.str
    else:
        payload = table.tobytes()
    meta = f"{payload_dtype}:{table.shape}:".encode()
    return hashlib.sha256(meta + payload).hexdigest()


def lookup_counters_batch(counters, items, default: int = 0) -> np.ndarray:
    """Vectorized ``[counters.get(i, default) for i in items]``.

    The one dict-to-array primitive behind the counter summaries'
    ``estimate_batch`` paths (Misra-Gries, SpaceSaving, and the BernMG /
    robust heavy-hitters wrappers above them): keys and values are pulled
    into int64 arrays once, sorted, and every probe resolved with a single
    ``np.searchsorted`` pass -- ``O((k + n) log k)`` for ``k`` counters and
    ``n`` probes, no per-probe Python.  Exactness contract: returns the
    same integers the dict lookups produce; any key, value, probe, or
    default beyond int64 (huge-coefficient attack summaries) routes the
    whole call through the exact Python loop instead of wrapping.
    """
    try:
        probe = np.asarray(items, dtype=np.int64)
        count = len(counters)
        keys = np.fromiter(counters.keys(), dtype=np.int64, count=count)
        values = np.fromiter(counters.values(), dtype=np.int64, count=count)
        fill = np.int64(default)
    except (OverflowError, TypeError, ValueError):
        looked_up = [counters.get(int(item), default) for item in items]
        if not looked_up:
            return np.empty(0, dtype=np.int64)
        return np.asarray(looked_up)
    if probe.size == 0:
        return np.empty(0, dtype=np.int64)
    if count == 0:
        return np.full(probe.shape, fill, dtype=np.int64)
    order = np.argsort(keys)
    keys = keys[order]
    values = values[order]
    pos = np.searchsorted(keys, probe)
    np.minimum(pos, count - 1, out=pos)
    return np.where(keys[pos] == probe, values[pos], fill)


def add_tables_with_promotion(
    table: np.ndarray, other: np.ndarray, absorbed_mass: int
) -> np.ndarray:
    """``table + other`` with exact-arithmetic promotion, for sketch merges.

    ``absorbed_mass`` is the *combined* |delta| mass both tables have
    absorbed -- an upper bound on any cell of the sum.  While it stays
    below :data:`INT64_SAFE_MASS` the int64 addition cannot wrap; at or
    past it both operands are promoted to exact object cells *before*
    adding, so the sum is computed in whichever arithmetic is safe.  The
    one shared promotion policy for every int64-table sketch
    (CountMin/CountSketch merges).
    """
    if absorbed_mass >= INT64_SAFE_MASS and table.dtype != object:
        table = table.astype(object)
    if table.dtype == object and other.dtype != object:
        other = other.astype(object)
    elif other.dtype == object and table.dtype != object:
        table = table.astype(object)
    return table + other


class FrequencyVector:
    """Exact frequency vector over universe ``[0, n)``.

    Serves as the ground-truth oracle in white-box games and as the reference
    implementation for every estimator in the library.

    Parameters
    ----------
    universe_size:
        ``n``; updates must name items below this bound.
    allow_negative:
        If ``False`` (strict turnstile), an update driving a coordinate
        negative raises :class:`ValueError`.  The paper's L0 algorithm only
        needs ``||f||_inf <= poly(n)`` at the end, so general turnstile
        streams set this to ``True``.
    """

    def __init__(self, universe_size: int, allow_negative: bool = True) -> None:
        if universe_size <= 0:
            raise ValueError(f"universe_size must be positive, got {universe_size}")
        self.universe_size = universe_size
        self.allow_negative = allow_negative
        self._counts: dict[int, int] = {}
        self._length = 0

    # -- updates --------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one update, maintaining sparsity (zeros are evicted)."""
        if update.item >= self.universe_size:
            raise ValueError(
                f"item {update.item} outside universe [0, {self.universe_size})"
            )
        new_value = self._counts.get(update.item, 0) + update.delta
        if new_value < 0 and not self.allow_negative:
            raise ValueError(
                f"update would drive item {update.item} negative in a strict stream"
            )
        if new_value == 0:
            self._counts.pop(update.item, None)
        else:
            self._counts[update.item] = new_value
        self._length += 1

    def extend(self, updates: Iterable[Update]) -> None:
        """Apply a sequence of updates."""
        for update in updates:
            self.apply(update)

    def apply_batch(self, items, deltas) -> None:
        """Apply a whole batch, aggregating per-item deltas with numpy.

        Equivalent to applying the updates one at a time: coordinate updates
        commute.  Strict (``allow_negative=False``) vectors fall back to the
        per-update loop so intermediate-negativity errors are preserved.
        """
        if len(items) != len(deltas):
            raise ValueError(
                f"items/deltas length mismatch: {len(items)} != {len(deltas)}"
            )
        if not self.allow_negative:
            for item, delta in zip(items, deltas):
                self.apply(Update(int(item), int(delta)))
            return
        unique, aggregated = aggregate_batch(items, deltas, self.universe_size)
        for item, delta in zip(unique, aggregated):
            new_value = self._counts.get(item, 0) + delta
            if new_value == 0:
                self._counts.pop(item, None)
            else:
                self._counts[item] = new_value
        self._length += len(items)

    def merge_from(self, other: "FrequencyVector") -> None:
        """Add another vector's coordinates into this one (shard fan-in).

        Exact: coordinate additions commute, so merging shard vectors fed
        disjoint sub-streams equals one vector fed the whole stream.  The
        stream-position counter adds, matching the combined stream length.
        """
        if other.universe_size != self.universe_size:
            raise ValueError(
                f"universe mismatch: {other.universe_size} != {self.universe_size}"
            )
        for item, value in other._counts.items():
            new_value = self._counts.get(item, 0) + value
            if new_value < 0 and not self.allow_negative:
                raise ValueError(
                    f"merge would drive item {item} negative in a strict vector"
                )
            if new_value == 0:
                self._counts.pop(item, None)
            else:
                self._counts[item] = new_value
        self._length += other._length

    # -- queries ----------------------------------------------------------

    def __getitem__(self, item: int) -> int:
        return self._counts.get(item, 0)

    def __len__(self) -> int:
        """Number of updates applied so far (the stream position ``t``)."""
        return self._length

    @property
    def support(self) -> frozenset[int]:
        return frozenset(self._counts)

    def items(self) -> Iterator[tuple[int, int]]:
        """Sorted (item, frequency) pairs of the support."""
        return iter(sorted(self._counts.items()))

    def l0(self) -> int:
        """``F_0 = L_0``: number of nonzero coordinates."""
        return len(self._counts)

    def l1(self) -> int:
        """``||f||_1`` (sum of absolute frequencies)."""
        return sum(abs(v) for v in self._counts.values())

    def fp_moment(self, p: float) -> float:
        """``F_p(f) = sum |f_k|^p`` (``F_0`` counts nonzeros)."""
        if p < 0:
            raise ValueError(f"p must be >= 0, got {p}")
        if p == 0:
            return float(self.l0())
        return float(sum(abs(v) ** p for v in self._counts.values()))

    def lp_norm(self, p: float) -> float:
        """``L_p = F_p^{1/p}`` for ``p > 0``; ``L_0`` for ``p = 0``."""
        if p == 0:
            return float(self.l0())
        return self.fp_moment(p) ** (1.0 / p)

    def heavy_hitters(self, threshold: float, p: float = 1.0) -> frozenset[int]:
        """All items with ``|f_k| >= threshold * L_p``.

        With ``p = 1`` this is the epsilon-L1-heavy-hitters ground truth of
        Theorem 1.1 (the paper states ``f_i > eps * L1``; we use ``>=`` with
        an explicit threshold so callers control strictness via epsilon).
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        bar = threshold * self.lp_norm(p)
        return frozenset(k for k, v in self._counts.items() if abs(v) >= bar)

    def inner_product(self, other: "FrequencyVector") -> int:
        """``<f, g>`` between two exact vectors."""
        if len(self._counts) > len(other._counts):
            return other.inner_product(self)
        return sum(v * other[k] for k, v in self._counts.items())

    def to_dense(self) -> list[int]:
        """Dense list representation (for small universes / tests)."""
        dense = [0] * self.universe_size
        for item, value in self._counts.items():
            dense[item] = value
        return dense

    def copy(self) -> "FrequencyVector":
        """Deep copy of the vector (oracle snapshots in games)."""
        clone = FrequencyVector(self.universe_size, self.allow_negative)
        clone._counts = dict(self._counts)
        clone._length = self._length
        return clone

    def __repr__(self) -> str:
        return (
            f"FrequencyVector(n={self.universe_size}, length={self._length}, "
            f"support={self.l0()})"
        )
