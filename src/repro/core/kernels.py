"""Fused scatter/gather kernels -- the library's one hot-loop layer.

Every batched sketch update bottoms out in the same three-step shape:
hash a chunk of items, (optionally) weight the deltas, and scatter-add
into a small table.  Before this module each sketch ran that shape as a
chain of numpy ufunc passes (one hash kernel, one weight multiply, one
``np.add.at``), each pass streaming the whole chunk through memory.  The
kernels here fuse the chain two ways:

The *query* side mirrors the shape: a batched point estimate hashes a
chunk of probe items and gathers table cells instead of scattering into
them.  ``count_min_estimate`` fuses hash+gather+row-min into one native
pass, and ``ams_sign_bits`` decodes AMS sign bits -- a full CPython
``random.Random(seed).getrandbits(1)`` (MT19937 ``init_by_array``
seeding plus one tempered output word) per item, bit-identical to the
interpreter's own derivation -- without entering the Python interpreter
per item, which is what makes the adversary probe loops in
:mod:`repro.adversaries.blackbox_attack` fast.

**Native tier.**  A few dozen lines of C -- compiled *on demand* with the
host's system compiler (``cc``/``gcc``/``clang``), loaded through
:mod:`ctypes`, and cached under ``~/.cache/repro-kernels`` keyed by a
hash of the source and flags -- run the entire hash+scatter chain in a
single pass per row, with the modular reductions lowered to the
double-reciprocal trick (``q = trunc(v * (1.0/p))`` plus a branchless
+-1 correction, exact for all ``0 <= v < 2**52``; the gates below refuse
anything larger).  The compiler is invoked exactly once per machine; the
``.so`` is reused across processes, and the calls release the GIL, so
the thread scatter backend gets real parallelism out of them.  No
compiler, a failed compile, a failed self-check, or
``REPRO_NATIVE_KERNELS=0`` all degrade silently to the numpy tier --
the native tier is an accelerator, never a dependency.

**Numpy tier.**  Always available, bit-identical, and itself fused where
that wins: constant-delta scatters (the unit-insertion workloads that
dominate every benchmark) collapse to one unweighted ``np.bincount``
(pure int64 -- exact for any constant, no float64 round-trip), and
varying-delta scatters keep numpy's indexed ``np.add.at`` loops.  A
float64-weighted ``np.bincount`` was evaluated for the varying case and
rejected: it is only exact while the batch's absolute delta mass stays
below 2**53, and on numpy >= 1.24 (whose ``add.at`` dispatches to typed
indexed loops) it also measures *slower* -- so the int64-exact path is
the fast path and nothing ever rounds through float64.

Exactness contract: every entry point is bit-identical to its reference
formulation (the per-row ``np.add.at`` loops, the stable-argsort
partition) for every input the gates admit, and refuses -- returning
``False`` so the caller keeps its reference path -- for every input they
do not.  ``tests/test_fused_scatter.py`` pins the equivalence on both
tiers, including overflow edges, object-dtype tables, and empty and
singleton batches.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from collections import deque
from pathlib import Path
from typing import Optional

import numpy as np

from repro.obs.metrics import get_registry as _get_obs_registry

__all__ = [
    "NATIVE_HASH_BOUND",
    "ams_sign_bits",
    "count_min_estimate",
    "count_min_scatter",
    "count_sketch_scatter",
    "native_kernels_available",
    "partition_scatter",
    "record_dispatch",
    "scatter_add",
    "sis_dense_scatter",
]

_obs_registry = _get_obs_registry()
_obs_dispatch = _obs_registry.counter(
    "repro_kernel_dispatch_total",
    "Kernel dispatches by entry point and executed tier",
)
# (kernel, tier) -> pending-dispatch deque; the working set is a handful
# of pairs, so the dict stays tiny and the hot path never formats labels
# or takes a lock -- deque appends are GIL-atomic and the counts fold
# into the registry at snapshot time (or at the backstop depth below).
_obs_dispatch_pending: dict[tuple, deque] = {}
_OBS_DISPATCH_FOLD_AT = 8192


def record_dispatch(kernel: str, tier: str) -> None:
    """Count one kernel dispatch under the tier that actually ran it.

    Callers record at the dispatch *site* -- after the tiered entry
    points above accept or refuse -- so the counter reflects executed
    tiers (``native`` / ``numpy`` / ``scalar`` / ``gather`` / ``radix``),
    not attempted ones.
    """
    if _obs_registry.enabled:
        pending = _obs_dispatch_pending.get((kernel, tier))
        if pending is None:
            pending = _obs_dispatch_pending.setdefault(
                (kernel, tier), deque()
            )
        pending.append(1)
        if len(pending) >= _OBS_DISPATCH_FOLD_AT:
            _obs_fold_dispatch()


def _obs_fold_dispatch() -> None:
    """Drain pending dispatch counts into the registry (fold hook).

    Writes through a bound series rather than ``Counter.add`` so counts
    recorded while enabled still land even if the registry has been
    disabled by fold time (benchmarks flip the switch between runs).
    """
    for (kernel, tier), pending in list(_obs_dispatch_pending.items()):
        count = 0
        while True:
            try:
                pending.popleft()
            except IndexError:
                break
            count += 1
        if count:
            bound = _obs_dispatch.bind(kernel=kernel, tier=tier)
            with _obs_registry.lock:
                bound.add_unlocked(count)


def _obs_discard_dispatch() -> None:
    for pending in list(_obs_dispatch_pending.values()):
        pending.clear()


_obs_registry.add_collector(_obs_fold_dispatch, _obs_discard_dispatch)

#: Primes (and SIS moduli) below this bound keep every hash intermediate
#: ``a*x + b < p**2`` under 2**52, where the native kernels' double-
#: reciprocal quotient is provably exact after a +-1 correction (error
#: <= (v/p) * 2**-52 < 1 for all v < 2**52, p >= 2).  Larger parameters
#: stay on the numpy tier, whose int64 Barrett path admits primes up to
#: ``INT64_HASH_BOUND``.
NATIVE_HASH_BOUND = 1 << 26

_C_SOURCE = r"""
#include <stdint.h>

/* Exact v mod p for 0 <= v < 2^52, p >= 2: double-reciprocal quotient
   plus branchless +-1 correction.  trunc == floor (v is nonnegative),
   and |v*inv - v/p| < 1 under the caller's 2^52 gate. */
static inline int64_t mod_dr(int64_t v, int64_t p, double inv)
{
    int64_t q = (int64_t)((double)v * inv);
    int64_t m = v - q * p;
    m += (m >> 63) & p;
    m -= p & -(int64_t)(m >= p);
    return m;
}

#define BLOCK 512

/* Hash one block of items into cells: ((a*x + b) mod p) mod w.  Kept as
   a separate table-free loop so the compiler can vectorize it; the
   scatter loop below is loop-carried on the table and stays scalar. */
static void hash_block(const int64_t *items, int64_t cnt,
                       int64_t a, int64_t b, int64_t prime,
                       int64_t width, int64_t wmask,
                       double inv_p, double inv_w, int64_t *cells)
{
    int64_t i;
    for (i = 0; i < cnt; ++i) {
        int64_t m = mod_dr(a * items[i] + b, prime, inv_p);
        cells[i] = wmask ? (m & wmask) : mod_dr(m, width, inv_w);
    }
}

/* Fused CountMin batch: per row, hash + scatter-add in one pass.
   deltas == NULL means unit insertions. */
void repro_cm_scatter(int64_t *table, int64_t depth, int64_t width,
                      const int64_t *items, const int64_t *deltas,
                      int64_t n, const int64_t *a, const int64_t *b,
                      int64_t prime)
{
    double inv_p = 1.0 / (double)prime;
    double inv_w = 1.0 / (double)width;
    int64_t wmask = (width & (width - 1)) ? 0 : width - 1;
    int64_t cells[BLOCK];
    int64_t start, r, i;
    for (start = 0; start < n; start += BLOCK) {
        int64_t cnt = n - start < BLOCK ? n - start : BLOCK;
        for (r = 0; r < depth; ++r) {
            int64_t *row = table + r * width;
            hash_block(items + start, cnt, a[r], b[r], prime, width,
                       wmask, inv_p, inv_w, cells);
            if (deltas) {
                const int64_t *d = deltas + start;
                for (i = 0; i < cnt; ++i) row[cells[i]] += d[i];
            } else {
                for (i = 0; i < cnt; ++i) row[cells[i]] += 1;
            }
        }
    }
}

/* Fused CountSketch batch: bucket hash + sign hash + signed scatter. */
void repro_cs_scatter(int64_t *table, int64_t depth, int64_t width,
                      const int64_t *items, const int64_t *deltas,
                      int64_t n, const int64_t *ba, const int64_t *bb,
                      const int64_t *sa, const int64_t *sb, int64_t prime)
{
    double inv_p = 1.0 / (double)prime;
    double inv_w = 1.0 / (double)width;
    int64_t wmask = (width & (width - 1)) ? 0 : width - 1;
    int64_t cells[BLOCK];
    int64_t sgn[BLOCK];
    int64_t start, r, i;
    for (start = 0; start < n; start += BLOCK) {
        int64_t cnt = n - start < BLOCK ? n - start : BLOCK;
        const int64_t *blk = items + start;
        for (r = 0; r < depth; ++r) {
            int64_t *row = table + r * width;
            hash_block(blk, cnt, ba[r], bb[r], prime, width, wmask,
                       inv_p, inv_w, cells);
            {
                int64_t sar = sa[r], sbr = sb[r];
                for (i = 0; i < cnt; ++i) {
                    int64_t sm = mod_dr(sar * blk[i] + sbr, prime, inv_p);
                    sgn[i] = 1 - ((sm & 1) << 1);
                }
            }
            if (deltas) {
                const int64_t *d = deltas + start;
                for (i = 0; i < cnt; ++i) row[cells[i]] += sgn[i] * d[i];
            } else {
                for (i = 0; i < cnt; ++i) row[cells[i]] += sgn[i];
            }
        }
    }
}

/* Fused SIS dense batch: gather the column, multiply by the reduced
   delta, accumulate mod q at every step (registers stay in [0, q), so
   no batch-limit splitting is ever needed). */
void repro_sis_scatter(int64_t *dense, int64_t rows,
                       const int64_t *chunks, const int64_t *offsets,
                       const int64_t *reduced, int64_t n,
                       const int64_t *cols, int64_t q)
{
    double inv_q = 1.0 / (double)q;
    int64_t i, r;
    for (i = 0; i < n; ++i) {
        int64_t d = reduced[i];
        int64_t *reg = dense + chunks[i] * rows;
        const int64_t *col = cols + offsets[i] * rows;
        if (!d) continue;
        for (r = 0; r < rows; ++r)
            reg[r] = mod_dr(reg[r] + d * col[r], q, inv_q);
    }
}

/* Fused CountMin batched estimate: per block, hash every row and fold
   the gathered cells into a running minimum -- one pass over the probe
   items, no (depth, n) intermediate. */
void repro_cm_estimate(const int64_t *table, int64_t depth, int64_t width,
                       const int64_t *items, int64_t n, const int64_t *a,
                       const int64_t *b, int64_t prime, int64_t *out)
{
    double inv_p = 1.0 / (double)prime;
    double inv_w = 1.0 / (double)width;
    int64_t wmask = (width & (width - 1)) ? 0 : width - 1;
    int64_t cells[BLOCK];
    int64_t start, r, i;
    for (start = 0; start < n; start += BLOCK) {
        int64_t cnt = n - start < BLOCK ? n - start : BLOCK;
        for (r = 0; r < depth; ++r) {
            const int64_t *row = table + r * width;
            int64_t *dst = out + start;
            hash_block(items + start, cnt, a[r], b[r], prime, width,
                       wmask, inv_p, inv_w, cells);
            if (r == 0) {
                for (i = 0; i < cnt; ++i) dst[i] = row[cells[i]];
            } else {
                for (i = 0; i < cnt; ++i) {
                    int64_t v = row[cells[i]];
                    if (v < dst[i]) dst[i] = v;
                }
            }
        }
    }
}

#define MT_N 624

/* mt[] <- init_genrand(s): the MT19937 state fill CPython seeds with. */
static void mt_init_genrand(uint32_t *mt, uint32_t s)
{
    int i;
    mt[0] = s;
    for (i = 1; i < MT_N; i++)
        mt[i] = (uint32_t)(1812433253UL * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i);
}

/* First output bit of CPython's random.Random(seed).getrandbits(1) for
   0 <= seed < 2^64: init_by_array over the 1-or-2-word little-endian
   key (exactly random_seed() in Modules/_randommodule.c), then the
   index-0 twist step and tempering of genrand_uint32 -- only the first
   word is ever read, so the remaining 623 twist steps are skipped.
   base[] is the shared init_genrand(19650218) state, computed once per
   batch. */
static int64_t mt_first_bit(const uint32_t *base, uint64_t seed)
{
    uint32_t mt[MT_N];
    uint32_t key[2];
    uint32_t y, y0;
    int keylen, i, j, k;
    key[0] = (uint32_t)(seed & 0xffffffffUL);
    key[1] = (uint32_t)(seed >> 32);
    keylen = key[1] ? 2 : 1;
    for (i = 0; i < MT_N; i++) mt[i] = base[i];
    i = 1; j = 0;
    for (k = MT_N; k; k--) {
        mt[i] = (uint32_t)((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30))
                                     * 1664525UL)) + key[j] + (uint32_t)j);
        i++; j++;
        if (i >= MT_N) { mt[0] = mt[MT_N - 1]; i = 1; }
        if (j >= keylen) j = 0;
    }
    for (k = MT_N - 1; k; k--) {
        mt[i] = (uint32_t)((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30))
                                     * 1566083941UL)) - (uint32_t)i);
        i++;
        if (i >= MT_N) { mt[0] = mt[MT_N - 1]; i = 1; }
    }
    mt[0] = 0x80000000UL;
    y = (mt[0] & 0x80000000UL) | (mt[1] & 0x7fffffffUL);
    y0 = mt[397] ^ (y >> 1) ^ ((y & 1) ? 0x9908b0dfUL : 0UL);
    y0 ^= (y0 >> 11);
    y0 ^= (y0 << 7) & 0x9d2c5680UL;
    y0 ^= (y0 << 15) & 0xefc60000UL;
    y0 ^= (y0 >> 18);
    return (int64_t)(y0 >> 31);
}

/* AMS sign decode: out[i] = +-1 with the same bit CPython's
   random.Random((row_seed << 20) ^ items[i]).getrandbits(1) draws. */
void repro_ams_signs(uint64_t base_seed, const int64_t *items, int64_t n,
                     int64_t *out)
{
    uint32_t base[MT_N];
    int64_t i;
    mt_init_genrand(base, 19650218UL);
    for (i = 0; i < n; ++i) {
        uint64_t seed = base_seed ^ (uint64_t)items[i];
        out[i] = mt_first_bit(base, seed) ? 1 : -1;
    }
}

/* Fused universe partition: Fibonacci hash + counting sort + stable
   scatter, one pass each.  counts must hold 2*num_shards slots (the
   second half is the running-write-position scratch); shard ids land in
   scratch (length n) for the scatter pass. */
void repro_partition(const int64_t *items, const int64_t *deltas,
                     int64_t n, uint64_t multiplier, int64_t shard_bits,
                     int64_t window_shift, int64_t num_shards,
                     int64_t power_of_two, int64_t *out_items,
                     int64_t *out_deltas, int64_t *counts,
                     int64_t *scratch)
{
    int64_t *next = counts + num_shards;
    int64_t i, s, pos;
    for (s = 0; s < num_shards; ++s) counts[s] = 0;
    for (i = 0; i < n; ++i) {
        uint64_t mixed = (uint64_t)items[i] * multiplier;
        int64_t id = power_of_two
            ? (int64_t)(shard_bits ? (mixed >> (64 - shard_bits)) : 0)
            : (int64_t)((mixed >> window_shift) % (uint64_t)num_shards);
        scratch[i] = id;
        counts[id]++;
    }
    pos = 0;
    for (s = 0; s < num_shards; ++s) { next[s] = pos; pos += counts[s]; }
    for (i = 0; i < n; ++i) {
        int64_t dst = next[scratch[i]]++;
        out_items[dst] = items[i];
        out_deltas[dst] = deltas[i];
    }
}
"""

_I64 = ctypes.c_int64
_P64 = ctypes.c_void_p
_SIGNATURES = {
    "repro_cm_scatter": [_P64, _I64, _I64, _P64, _P64, _I64, _P64, _P64, _I64],
    "repro_cs_scatter": [
        _P64, _I64, _I64, _P64, _P64, _I64, _P64, _P64, _P64, _P64, _I64,
    ],
    "repro_sis_scatter": [_P64, _I64, _P64, _P64, _P64, _I64, _P64, _I64],
    "repro_cm_estimate": [_P64, _I64, _I64, _P64, _I64, _P64, _P64, _I64, _P64],
    "repro_ams_signs": [ctypes.c_uint64, _P64, _I64, _P64],
    "repro_partition": [
        _P64, _P64, _I64, ctypes.c_uint64, _I64, _I64, _I64, _I64,
        _P64, _P64, _P64, _P64,
    ],
}

_build_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_lib_tried = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def _cpu_identity() -> str:
    """Best-effort CPU fingerprint for the build-cache key.

    ``-march=native`` libraries are only valid on the microarchitecture
    that built them; a cache shared across machines (NFS home, baked
    container image, restored CI cache) must therefore key on the CPU,
    or loading a stale ``.so`` would SIGILL the process instead of
    falling back to the numpy tier.
    """
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as info:
            for line in info:
                if line.startswith(("model name", "flags", "Features")):
                    parts.append(line.strip())
                if len(parts) > 2:
                    break
    except OSError:
        parts.append(platform.processor())
    return "|".join(parts)


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compile(compiler: str, flags: list[str], out_path: Path) -> bool:
    """Compile the kernel source to ``out_path`` atomically; False on failure."""
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=out_path.parent) as tmp:
        src = Path(tmp) / "kernels.c"
        src.write_text(_C_SOURCE)
        obj = Path(tmp) / out_path.name
        command = [compiler, *flags, "-o", str(obj), str(src)]
        try:
            result = subprocess.run(
                command, capture_output=True, timeout=120, check=False
            )
        except (OSError, subprocess.TimeoutExpired):
            return False
        if result.returncode != 0 or not obj.exists():
            return False
        try:
            os.replace(obj, out_path)
        except OSError:
            return False
    return True


def _self_check(lib: ctypes.CDLL) -> bool:
    """Smoke every compiled kernel against tiny numpy references.

    Guards against a miscompiling toolchain (or an exotic ABI) silently
    poisoning sketch state: any mismatch in any of the four kernels
    discards the native tier wholesale.
    """
    items = np.array([0, 1, 5, 6, 6, 3], dtype=np.int64)
    deltas = np.array([1, -2, 3, 1, 1, 4], dtype=np.int64)
    prime, width, depth = 13, 3, 2
    a = np.array([3, 7], dtype=np.int64)
    b = np.array([1, 4], dtype=np.int64)
    table = np.zeros((depth, width), dtype=np.int64)
    lib.repro_cm_scatter(
        table.ctypes.data, _I64(depth), _I64(width), items.ctypes.data,
        deltas.ctypes.data, _I64(items.size), a.ctypes.data, b.ctypes.data,
        _I64(prime),
    )
    expected = np.zeros_like(table)
    for row in range(depth):
        cells = ((a[row] * items + b[row]) % prime) % width
        np.add.at(expected[row], cells, deltas)
    if not np.array_equal(table, expected):
        return False

    sa = np.array([5, 2], dtype=np.int64)
    sb = np.array([0, 11], dtype=np.int64)
    table[:] = 0
    lib.repro_cs_scatter(
        table.ctypes.data, _I64(depth), _I64(width), items.ctypes.data,
        deltas.ctypes.data, _I64(items.size), a.ctypes.data, b.ctypes.data,
        sa.ctypes.data, sb.ctypes.data, _I64(prime),
    )
    expected[:] = 0
    for row in range(depth):
        cells = ((a[row] * items + b[row]) % prime) % width
        signs = 1 - 2 * (((sa[row] * items + sb[row]) % prime) % 2)
        np.add.at(expected[row], cells, signs * deltas)
    if not np.array_equal(table, expected):
        return False

    rows, num_chunks, modulus = 3, 4, 11
    chunks = np.array([0, 3, 0, 2], dtype=np.int64)
    offsets = np.array([1, 0, 1, 2], dtype=np.int64)
    reduced = np.array([4, 10, 7, 0], dtype=np.int64)
    cols = np.arange(9, dtype=np.int64).reshape(3, rows) % modulus
    dense = np.ones((num_chunks, rows), dtype=np.int64)
    lib.repro_sis_scatter(
        dense.ctypes.data, _I64(rows), chunks.ctypes.data,
        offsets.ctypes.data, reduced.ctypes.data, _I64(chunks.size),
        cols.ctypes.data, _I64(modulus),
    )
    expected_dense = np.ones((num_chunks, rows), dtype=np.int64)
    for chunk, offset, value in zip(chunks, offsets, reduced):
        expected_dense[chunk] = (
            expected_dense[chunk] + value * cols[offset]
        ) % modulus
    if not np.array_equal(dense, expected_dense):
        return False

    probe = np.array([0, 2, 6, 12, 9], dtype=np.int64)
    estimates = np.empty(probe.size, dtype=np.int64)
    lib.repro_cm_estimate(
        table.ctypes.data, _I64(depth), _I64(width), probe.ctypes.data,
        _I64(probe.size), a.ctypes.data, b.ctypes.data, _I64(prime),
        estimates.ctypes.data,
    )
    expected_est = np.min(
        np.stack(
            [table[r, ((a[r] * probe + b[r]) % prime) % width] for r in range(depth)]
        ),
        axis=0,
    )
    if not np.array_equal(estimates, expected_est):
        return False

    import random as _random

    base_seed = 1234567 << 20
    sign_items = np.array([0, 1, 2, 77, (1 << 33) + 5], dtype=np.int64)
    signs_out = np.empty(sign_items.size, dtype=np.int64)
    lib.repro_ams_signs(
        ctypes.c_uint64(base_seed), sign_items.ctypes.data,
        _I64(sign_items.size), signs_out.ctypes.data,
    )
    expected_signs = np.array(
        [
            1 if _random.Random(base_seed ^ int(item)).getrandbits(1) else -1
            for item in sign_items
        ],
        dtype=np.int64,
    )
    if not np.array_equal(signs_out, expected_signs):
        return False

    out_items = np.empty_like(items)
    out_deltas = np.empty_like(deltas)
    counts = np.empty(8, dtype=np.int64)
    scratch = np.empty(items.size, dtype=np.int64)
    lib.repro_partition(
        items.ctypes.data, deltas.ctypes.data, _I64(items.size),
        ctypes.c_uint64(0x9E3779B97F4A7C15), _I64(2), _I64(33), _I64(4),
        _I64(1), out_items.ctypes.data, out_deltas.ctypes.data,
        counts.ctypes.data, scratch.ctypes.data,
    )
    ids = (items.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(62)
    order = np.argsort(ids, kind="stable")
    return np.array_equal(out_items, items[order]) and np.array_equal(
        out_deltas, deltas[order]
    )


def _load_native() -> Optional[ctypes.CDLL]:
    """Build (once per machine) and load the native kernel library."""
    if os.environ.get("REPRO_NATIVE_KERNELS", "").strip() == "0":
        return None
    compiler = _find_compiler()
    if compiler is None:
        return None
    flag_sets = [
        ["-O3", "-march=native", "-fPIC", "-shared"],
        ["-O3", "-fPIC", "-shared"],
    ]
    cpu = _cpu_identity()
    for flags in flag_sets:
        key = hashlib.sha256(
            ("\x00".join([_C_SOURCE, compiler, cpu, *flags])).encode()
        ).hexdigest()[:16]
        path = _cache_dir() / f"repro-kernels-{key}.so"
        try:
            if not path.exists() and not _compile(compiler, flags, path):
                continue
            lib = ctypes.CDLL(str(path))
        except OSError:
            continue
        for name, argtypes in _SIGNATURES.items():
            getattr(lib, name).argtypes = argtypes
            getattr(lib, name).restype = None
        if _self_check(lib):
            return lib
    return None


def _native() -> Optional[ctypes.CDLL]:
    global _lib, _lib_tried
    if not _lib_tried:
        with _build_lock:
            if not _lib_tried:
                _lib = _load_native()
                _lib_tried = True
    return _lib


def native_kernels_available() -> bool:
    """Whether the compiled tier is active (builds it on first call)."""
    return _native() is not None


def _reset_native_for_tests() -> None:
    """Drop the cached library handle so env-var gates re-evaluate."""
    global _lib, _lib_tried
    with _build_lock:
        _lib = None
        _lib_tried = False


def _contiguous_i64(*arrays: np.ndarray) -> bool:
    return all(
        a.dtype == np.int64 and a.flags.c_contiguous for a in arrays
    )


# -- numpy tier ------------------------------------------------------------


def scatter_add(out: np.ndarray, indices: np.ndarray, weights) -> None:
    """``out[indices] += weights`` -- the one scatter-add primitive.

    ``weights`` may be an array or a Python-int constant.  Constants take
    the fused path: one unweighted ``np.bincount`` (int64 end to end --
    exact for any constant the table itself can hold, never a float64
    round-trip) scaled and added in whole-array ops.  Array weights use
    numpy's indexed ``np.add.at`` loops, which are exact at every int64
    mass and, on numpy >= 1.24, at least as fast as a float64-weighted
    bincount would be.  Object-dtype outputs (promoted exact tables)
    always take ``np.add.at``.  Callers remain responsible for the
    no-wrap guarantee on ``out`` itself (the sketches' absorbed-mass
    promotion), exactly as with the reference formulation.
    """
    if isinstance(weights, (int, np.integer)) and out.dtype == np.int64:
        counts = np.bincount(indices, minlength=out.size)
        if weights != 1:
            counts *= int(weights)
        out += counts
        return
    np.add.at(out, indices, weights)


# -- fused sketch entry points --------------------------------------------


def _items_in_hash_domain(items: np.ndarray, prime: int) -> bool:
    """Whether every item satisfies the ``0 <= x < prime`` hash contract.

    The C kernels index table rows with the hashed cell directly, so an
    out-of-contract item (negative, or large enough to wrap ``a*x + b``)
    must never reach them -- the reference numpy path degrades to a
    garbage-but-in-range cell for such inputs, the native path would
    write out of bounds.  One vectorized min/max pass buys the guarantee.
    """
    if items.size == 0:
        return False
    return int(items.min()) >= 0 and int(items.max()) < prime


def count_min_scatter(
    table: np.ndarray,
    items: np.ndarray,
    deltas: np.ndarray,
    row_a: np.ndarray,
    row_b: np.ndarray,
    prime: int,
    unit_deltas: bool,
) -> bool:
    """Native fused CountMin batch; ``False`` keeps the caller's path.

    Gates: int64 contiguous operands, ``prime < NATIVE_HASH_BOUND``, and
    every item inside the ``0 <= x < prime`` hash domain (together these
    keep every ``a*x + b`` nonnegative and under 2**52, the range where
    the kernel's double-reciprocal reduction is exact).
    """
    lib = _native()
    if (
        lib is None
        or prime >= NATIVE_HASH_BOUND
        or not _contiguous_i64(table, items, deltas, row_a, row_b)
        or not _items_in_hash_domain(items, prime)
    ):
        return False
    lib.repro_cm_scatter(
        table.ctypes.data,
        _I64(table.shape[0]),
        _I64(table.shape[1]),
        items.ctypes.data,
        None if unit_deltas else deltas.ctypes.data,
        _I64(items.size),
        row_a.ctypes.data,
        row_b.ctypes.data,
        _I64(prime),
    )
    return True


def count_sketch_scatter(
    table: np.ndarray,
    items: np.ndarray,
    deltas: np.ndarray,
    bucket_a: np.ndarray,
    bucket_b: np.ndarray,
    sign_a: np.ndarray,
    sign_b: np.ndarray,
    prime: int,
    unit_deltas: bool,
) -> bool:
    """Native fused CountSketch batch; ``False`` keeps the caller's path.

    Same gates as :func:`count_min_scatter`, including the item-domain
    check that keeps the C kernel's table writes in bounds.
    """
    lib = _native()
    if (
        lib is None
        or prime >= NATIVE_HASH_BOUND
        or not _contiguous_i64(
            table, items, deltas, bucket_a, bucket_b, sign_a, sign_b
        )
        or not _items_in_hash_domain(items, prime)
    ):
        return False
    lib.repro_cs_scatter(
        table.ctypes.data,
        _I64(table.shape[0]),
        _I64(table.shape[1]),
        items.ctypes.data,
        None if unit_deltas else deltas.ctypes.data,
        _I64(items.size),
        bucket_a.ctypes.data,
        bucket_b.ctypes.data,
        sign_a.ctypes.data,
        sign_b.ctypes.data,
        _I64(prime),
    )
    return True


def count_min_estimate(
    table: np.ndarray,
    items: np.ndarray,
    row_a: np.ndarray,
    row_b: np.ndarray,
    prime: int,
) -> Optional[np.ndarray]:
    """Native fused CountMin batched estimate; ``None`` keeps the caller's path.

    One pass per block: hash every row, gather its cells, fold the
    running minimum -- the read-side twin of :func:`count_min_scatter`,
    with the same gates (int64 contiguous operands, ``prime <
    NATIVE_HASH_BOUND``, items inside the ``0 <= x < prime`` hash
    domain so the double-reciprocal reduction stays exact and every
    table read stays in bounds).
    """
    lib = _native()
    if (
        lib is None
        or prime >= NATIVE_HASH_BOUND
        or not _contiguous_i64(table, items, row_a, row_b)
        or not _items_in_hash_domain(items, prime)
    ):
        return None
    out = np.empty(items.size, dtype=np.int64)
    lib.repro_cm_estimate(
        table.ctypes.data,
        _I64(table.shape[0]),
        _I64(table.shape[1]),
        items.ctypes.data,
        _I64(items.size),
        row_a.ctypes.data,
        row_b.ctypes.data,
        _I64(prime),
        out.ctypes.data,
    )
    return out


def ams_sign_bits(base_seed: int, items: np.ndarray) -> Optional[np.ndarray]:
    """Native AMS sign decode; ``None`` keeps the caller's scalar path.

    Returns the ``+-1`` array whose entries equal CPython's
    ``random.Random(base_seed ^ item).getrandbits(1)`` mapped to
    ``{1, -1}`` -- bit-identical to :meth:`repro.moments.ams.AMSSketch.sign`
    (the self-check pins it against the interpreter at load time).
    Gates: nonnegative int64 items and ``0 <= base_seed < 2**64`` keep
    ``base_seed ^ item`` a valid 1-or-2-word MT19937 key.
    """
    lib = _native()
    if (
        lib is None
        or not 0 <= base_seed < 1 << 64
        or not _contiguous_i64(items)
        or (items.size and int(items.min()) < 0)
    ):
        return None
    out = np.empty(items.size, dtype=np.int64)
    lib.repro_ams_signs(
        ctypes.c_uint64(base_seed),
        items.ctypes.data,
        _I64(items.size),
        out.ctypes.data,
    )
    return out


def sis_dense_scatter(
    dense: np.ndarray,
    chunks: np.ndarray,
    offsets: np.ndarray,
    reduced: np.ndarray,
    cols: np.ndarray,
    modulus: int,
) -> bool:
    """Native fused SIS dense batch; ``False`` keeps the caller's path.

    ``reduced`` must already be the deltas mod q (residues in ``[0, q)``
    -- the caller reduces with exact int64 numpy ``%``).  The kernel
    accumulates mod q at every step, so registers never leave ``[0, q)``
    and the caller's batch-limit splitting is unnecessary on this path.
    Gates: ``modulus < NATIVE_HASH_BOUND`` keeps ``reg + d*col < q**2``
    under 2**52, and one min/max pass per index operand keeps every C
    write inside ``dense`` and every read inside ``cols`` -- out-of-range
    inputs refuse (the reference path raises IndexError for them; the
    kernel must never turn that into a heap write).
    """
    lib = _native()
    if (
        lib is None
        or modulus >= NATIVE_HASH_BOUND
        or not _contiguous_i64(dense, chunks, offsets, reduced, cols)
        or chunks.size == 0
        or int(chunks.min()) < 0
        or int(chunks.max()) >= dense.shape[0]
        or int(offsets.min()) < 0
        or int(offsets.max()) >= cols.shape[0]
        or int(reduced.min()) < 0
        or int(reduced.max()) >= modulus
    ):
        return False
    lib.repro_sis_scatter(
        dense.ctypes.data,
        _I64(dense.shape[1]),
        chunks.ctypes.data,
        offsets.ctypes.data,
        reduced.ctypes.data,
        _I64(chunks.size),
        cols.ctypes.data,
        _I64(modulus),
    )
    return True


def partition_scatter(
    items: np.ndarray,
    deltas: np.ndarray,
    multiplier: int,
    shard_bits: int,
    window_shift: int,
    num_shards: int,
    power_of_two: bool,
):
    """Native fused partition: hash + counting sort + stable scatter.

    Returns ``(sorted_items, sorted_deltas, counts)`` -- shard-grouped
    copies in stream order plus per-shard counts -- or ``None`` when the
    native tier is unavailable.  Bit-identical to hashing with
    ``UniversePartitioner.assign_array`` and stable-sorting by shard id.
    """
    lib = _native()
    if lib is None or not _contiguous_i64(items, deltas):
        return None
    n = items.size
    out_items = np.empty(n, dtype=np.int64)
    out_deltas = np.empty(n, dtype=np.int64)
    counts = np.empty(2 * num_shards, dtype=np.int64)
    scratch = np.empty(n, dtype=np.int64)
    lib.repro_partition(
        items.ctypes.data,
        deltas.ctypes.data,
        _I64(n),
        ctypes.c_uint64(multiplier),
        _I64(shard_bits),
        _I64(window_shift),
        _I64(num_shards),
        _I64(1 if power_of_two else 0),
        out_items.ctypes.data,
        out_deltas.ctypes.data,
        counts.ctypes.data,
        scratch.ctypes.data,
    )
    return out_items, out_deltas, counts[:num_shards]
