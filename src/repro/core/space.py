"""Idealized bit-space accounting for streaming data structures.

The paper's results are stated in *bits of memory* (e.g., Misra-Gries uses
``O((1/eps)(log m + log n))`` bits while the robust algorithm of Theorem 1.1
uses ``O((1/eps)(log n + log 1/eps) + log log m)`` bits).  Python object
overhead (28 bytes per ``int``, hash-table slack, ...) would completely drown
the ``log log m`` versus ``log m`` distinction the paper is about, so every
sketch in this library reports its space through an *idealized accounting
model*: the number of bits an information-theoretically tight encoding of the
current state would need.

The conventions are:

* a non-negative integer ``v`` costs ``bits_for_int(v)`` bits -- the length of
  its binary representation (at least one bit, so that a stored zero is still
  charged);
* a counter known to range over ``[0, cap]`` costs ``bits_for_range(cap)``
  bits regardless of its current value (a register is sized for its maximum);
* an item identifier drawn from a universe of size ``n`` costs
  ``ceil(log2 n)`` bits;
* a real-valued parameter with precision ``2^-b`` costs ``b`` bits.

These choices mirror how the paper itself counts space (registers sized for
their ranges), and they make the asymptotic separations measurable at
laptop-scale parameters.
"""

from __future__ import annotations

import math

__all__ = [
    "bits_for_int",
    "bits_for_signed_int",
    "bits_for_range",
    "bits_for_universe",
    "bits_for_float",
    "log2_ceil",
    "loglog_bits",
]


def log2_ceil(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer ``value``.

    ``log2_ceil(1) == 0`` -- a one-element universe needs no bits.
    """
    if value <= 0:
        raise ValueError(f"log2_ceil requires a positive value, got {value}")
    return (value - 1).bit_length()


def bits_for_int(value: int) -> int:
    """Bits to store the non-negative integer ``value`` (minimum 1)."""
    if value < 0:
        raise ValueError(f"bits_for_int requires value >= 0, got {value}")
    return max(1, value.bit_length())


def bits_for_signed_int(value: int) -> int:
    """Bits for a signed integer: magnitude bits plus one sign bit."""
    return bits_for_int(abs(value)) + 1


def bits_for_range(cap: int) -> int:
    """Bits for a register holding any value in ``{0, ..., cap}``."""
    if cap < 0:
        raise ValueError(f"bits_for_range requires cap >= 0, got {cap}")
    return max(1, log2_ceil(cap + 1))


def bits_for_universe(universe_size: int) -> int:
    """Bits to name one element of a universe of ``universe_size`` items."""
    if universe_size <= 0:
        raise ValueError(
            f"bits_for_universe requires a positive universe, got {universe_size}"
        )
    return max(1, log2_ceil(universe_size))


def bits_for_float(precision_bits: int = 32) -> int:
    """Bits charged for one real-valued parameter stored to fixed precision."""
    if precision_bits <= 0:
        raise ValueError("precision_bits must be positive")
    return precision_bits


def loglog_bits(value: int) -> int:
    """Bits to store ``log2(value)`` itself, i.e. ``O(log log value)``.

    This is the cost of a Morris-style register: the register stores an
    exponent, so its width is the bit-length of the exponent's range.
    """
    if value < 1:
        raise ValueError(f"loglog_bits requires value >= 1, got {value}")
    exponent_cap = max(1, math.ceil(math.log2(value + 1)))
    return bits_for_range(exponent_cap)
