"""Witnessed randomness: every random draw is observable by the adversary.

In the white-box adversarial model (Section 1 of the paper), round ``t``
proceeds as: the adversary picks update ``u_t``; the algorithm updates its
data structures ``D_t`` *acquiring a fresh batch ``R_t`` of random bits*; the
adversary then observes the response ``A_t``, the internal state ``D_t`` and
the random bits ``R_t``.

:class:`WitnessedRandom` wraps :class:`random.Random` so that every draw an
algorithm makes is appended to a transcript.  The game runner
(:mod:`repro.core.game`) snapshots the transcript after each round and hands
it to the adversary, faithfully realizing the model: the algorithm has *no*
secret randomness.

Memory note: for multi-million-update benchmark streams a fully retained
transcript would dominate RAM, so by default only the most recent
``retain`` draws are kept verbatim (plus an exact draw count).  This is an
engineering bound on the *harness*, not a weakening of the model -- the
adversary observes each batch as it is made (the game snapshots every
round), and tests that need the complete history construct their source with
``retain=None``.

Batched draws (:meth:`binomial`, :meth:`geometric`) exist so that Bernoulli
samplers and Morris counters can process ``k`` unit events in ``O(1)`` /
``O(successes)`` time instead of ``k`` coin flips; each batch is recorded as
one transcript entry, which reveals exactly the same information as the
individual coins it replaces.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Iterator, Optional, Sequence, TypeVar

__all__ = ["RandomDraw", "WitnessedRandom"]

T = TypeVar("T")


class RandomDraw:
    """One recorded random draw: a label describing the call and its value."""

    __slots__ = ("label", "value")

    def __init__(self, label: str, value: object) -> None:
        self.label = label
        self.value = value

    def __repr__(self) -> str:
        return f"RandomDraw({self.label!r}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RandomDraw)
            and self.label == other.label
            and self.value == other.value
        )


class WitnessedRandom:
    """A random source whose complete history is publicly visible.

    Parameters
    ----------
    seed:
        Seed for the underlying generator.  The seed itself is part of the
        public transcript, because in the white-box model the adversary sees
        all randomness ever used.
    retain:
        How many recent draws to keep verbatim (``None`` = all).
    """

    def __init__(self, seed: int = 0, retain: Optional[int] = 512) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._transcript: deque[RandomDraw] = deque(maxlen=retain)
        self._total = 0
        self._record("seed", seed)

    def _record(self, label: str, value: object) -> None:
        self._transcript.append(RandomDraw(label, value))
        self._total += 1

    # -- draws ---------------------------------------------------------

    def bit(self) -> int:
        """Draw one uniform bit."""
        value = self._rng.getrandbits(1)
        self._record("bit", value)
        return value

    def bits(self, k: int) -> int:
        """Draw ``k`` uniform bits, returned as an integer in ``[0, 2^k)``."""
        if k <= 0:
            raise ValueError(f"bits requires k >= 1, got {k}")
        value = self._rng.getrandbits(k)
        self._record(f"bits({k})", value)
        return value

    def randint(self, low: int, high: int) -> int:
        """Draw a uniform integer in the inclusive range ``[low, high]``."""
        value = self._rng.randint(low, high)
        self._record(f"randint({low},{high})", value)
        return value

    def randrange(self, stop: int) -> int:
        """Draw a uniform integer in ``[0, stop)``."""
        value = self._rng.randrange(stop)
        self._record(f"randrange({stop})", value)
        return value

    def random(self) -> float:
        """Draw a uniform float in ``[0, 1)``."""
        value = self._rng.random()
        self._record("random", value)
        return value

    def bernoulli(self, probability: float) -> bool:
        """Draw a Bernoulli(probability) coin."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        value = self._rng.random() < probability
        self._record("bernoulli", value)
        return value

    def binomial(self, trials: int, probability: float) -> int:
        """Draw Binomial(trials, probability) -- ``trials`` coins in one batch.

        Exact: inversion for small ``trials``, otherwise a seeded numpy
        generator (whose seed is itself drawn from -- and recorded in --
        this source, keeping the whole batch witnessable).
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if trials == 0 or probability == 0.0:
            value = 0
        elif probability == 1.0:
            value = trials
        elif trials <= 32:
            value = sum(self._rng.random() < probability for _ in range(trials))
        else:
            import numpy as np

            batch_seed = self._rng.getrandbits(63)
            value = int(np.random.default_rng(batch_seed).binomial(trials, probability))
        self._record(f"binomial({trials})", value)
        return value

    def geometric(self, probability: float) -> int:
        """Trials until (and including) the first success, success prob ``p``.

        Inverse-transform sampling; used by Morris counters to skip over
        runs of failed promotion coins in ``O(1)``.
        """
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if probability == 1.0:
            value = 1
        else:
            u = self._rng.random()
            # Guard against u == 0 (log(0)).
            u = max(u, 1e-300)
            value = int(math.ceil(math.log(u) / math.log1p(-probability)))
            value = max(1, value)
        self._record("geometric", value)
        return value

    def choice(self, items: Sequence[T]) -> T:
        """Draw a uniform element of ``items``."""
        value = self._rng.choice(items)
        self._record("choice", value)
        return value

    def sign(self) -> int:
        """Draw a uniform sign in ``{-1, +1}`` (AMS-style)."""
        value = 1 if self._rng.getrandbits(1) else -1
        self._record("sign", value)
        return value

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place, recording the resulting order."""
        self._rng.shuffle(items)
        self._record("shuffle", tuple(items))

    def spawn(self, label: str) -> "WitnessedRandom":
        """Derive a child source whose seed is drawn from (and visible in)
        this transcript.

        Used when an algorithm instantiates a sub-structure: the child's
        randomness remains part of the public view through its own
        transcript, which callers must expose via state views.
        """
        child_seed = self._rng.getrandbits(63)
        self._record(f"spawn({label})", child_seed)
        return WitnessedRandom(seed=child_seed, retain=self._transcript.maxlen)

    # -- inspection ------------------------------------------------------

    @property
    def transcript(self) -> tuple[RandomDraw, ...]:
        """The retained history of draws (most recent ``retain``)."""
        return tuple(self._transcript)

    @property
    def draws(self) -> int:
        """Total number of draws made so far (excluding the seed entry)."""
        return self._total - 1

    def mark(self) -> int:
        """Return a draw-count position for use with :meth:`draws_since`."""
        return self._total

    def draws_since(self, marker: int) -> tuple[RandomDraw, ...]:
        """Draws made after position ``marker`` (within the retained window)."""
        missing = self._total - marker
        if missing <= 0:
            return ()
        window = list(self._transcript)
        return tuple(window[-missing:]) if missing <= len(window) else tuple(window)

    def __iter__(self) -> Iterator[RandomDraw]:
        return iter(self._transcript)
