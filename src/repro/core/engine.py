"""StreamEngine: chunked, vectorized driving of streams, games, experiments.

Why an engine
-------------
Every algorithm in the library exposes the one-update interface
``process(update)`` the paper's game is defined over.  Driving a 10^6-update
workload through that interface costs 10^6 Python-level calls per algorithm
-- the dominant cost of every large experiment.  The engine instead slices a
workload into chunks of ``(items, deltas)`` numpy arrays and hands each chunk
to :meth:`~repro.core.algorithm.StreamAlgorithm.feed_batch`, which the
array-backed sketches (CountMin, CountSketch, AMS, the exact moment/distinct
structures) override with vectorized scatter updates.

The batching contract
---------------------
``process_batch(items, deltas)`` must leave the algorithm in *exactly* the
state that feeding the same updates one at a time would: identical tables,
identical estimates, identical randomness transcript, identical
``space_bits()``.  Vectorized overrides satisfy this because their update
rules are commutative integer additions whose hash parameters were all drawn
at construction time -- processing draws no randomness, so the transcript is
untouched on either path.  ``tests/test_batch_equivalence.py`` enforces the
contract bit-for-bit on random turnstile streams.

Two situations force the chunk size down to 1:

* **Adaptive adversaries.**  In the white-box game the adversary chooses
  update ``u_{t+1}`` after observing the state view at time ``t``.  Batching
  would hide intermediate states, so :meth:`StreamEngine.play` inspects the
  adversary's ``adaptive`` flag and degrades to the per-round
  :func:`repro.core.game.run_game` loop whenever it is ``True`` (the safe
  default).  Non-adaptive adversaries (e.g.
  :class:`~repro.core.adversary.ObliviousAdversary`) commit to their stream
  in advance, so their games batch freely -- validation then happens at
  chunk boundaries instead of every round, which cannot change who *can*
  win, only how often the referee looks.
* **Huge coefficients.**  The vectorized paths use int64 arrays.  Updates
  whose items or deltas exceed int64 (kernel-attack streams built from exact
  rational elimination can produce them) are detected via
  :class:`OverflowError` and routed through the per-update path, preserving
  Python's arbitrary-precision arithmetic.

Intermediate answers
--------------------
``query_every`` in :meth:`drive` mirrors the game runner's thinning: the
engine queries at chunk boundaries, never inside a chunk.  Experiments that
only read final answers (most of them) keep ``query_every=None`` and pay
zero query overhead.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Optional

import numpy as np

from repro.obs import (
    PHASE_SECONDS_HELP,
    PHASE_SECONDS_METRIC,
    TIME_BUCKETS,
    get_registry as _get_obs_registry,
    get_tracer as _get_obs_tracer,
)
from repro.core.adversary import BudgetExhausted, WhiteBoxAdversary
from repro.core.algorithm import StreamAlgorithm
from repro.core.game import (
    GameResult,
    GroundTruth,
    RoundRecord,
    Validator,
    run_game,
)
from repro.core.stream import updates_to_arrays

__all__ = ["StreamEngine", "DEFAULT_CHUNK_SIZE"]

#: Default chunk size: large enough to amortize numpy dispatch, small enough
#: that per-chunk scratch arrays stay cache-friendly.
DEFAULT_CHUNK_SIZE = 8192

# Chunk-granularity telemetry (never per update): one enabled-flag branch
# on the hot path when observability is off; when on, the chunk loops pay
# two perf_counter reads plus one local list append per chunk, and fold
# the whole call's log into the registry and tracer once at call end.
_obs_registry = _get_obs_registry()
_obs_tracer = _get_obs_tracer()
_obs_chunks = _obs_registry.counter(
    "repro_engine_chunks_total", "Chunks driven through StreamEngine, by path"
)
_obs_chunk_updates = _obs_registry.counter(
    "repro_engine_updates_total", "Updates driven through StreamEngine, by path"
)
_obs_phase_seconds = _obs_registry.histogram(
    PHASE_SECONDS_METRIC, PHASE_SECONDS_HELP, buckets=TIME_BUCKETS
)
# Per-path bound series (label keys pre-resolved) -- the flush pays one
# registry-lock acquisition per drive call, not one per chunk.
_obs_chunk_seconds = _obs_phase_seconds.bind(phase="engine.chunk")
_obs_by_path = {
    path: (_obs_chunks.bind(path=path), _obs_chunk_updates.bind(path=path))
    for path in ("drive", "drive_arrays", "game")
}


def _flush_chunks(path: str, log: list) -> None:
    """Fold one drive call's accumulated chunk log into the telemetry.

    ``log`` rows are ``(started, duration, position, count)``.  Counter
    totals land at call boundaries rather than per chunk -- a concurrent
    scrape mid-drive sees the previous call's totals -- which keeps the
    final totals (and the serial-vs-process fan-in equality) exact while
    the loop itself stays near-free.  Per-chunk latency still reaches the
    ``repro_phase_seconds{phase="engine.chunk"}`` histogram and the span
    ring at full resolution.
    """
    if not log:
        return
    chunks, chunk_updates = _obs_by_path[path]
    with _obs_registry.lock:
        chunks.add_unlocked(len(log))
        chunk_updates.add_unlocked(sum(row[3] for row in log))
        observe = _obs_chunk_seconds.observe_unlocked
        for row in log:
            observe(row[1])
    _obs_tracer.record_batch(
        "engine.chunk",
        (
            (started, duration,
             {"path": path, "position": position, "updates": count})
            for started, duration, position, count in log
        ),
    )


class StreamEngine:
    """Drives streams through algorithms in vectorized chunks.

    Parameters
    ----------
    chunk_size:
        Number of updates handed to ``feed_batch`` at a time.  ``1`` turns
        the engine into the classic per-update loop.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size

    # -- plain streams ------------------------------------------------------

    def _checkpoint_writer(
        self,
        targets,
        checkpoint_path,
        checkpoint_every: Optional[int],
        start_position: int,
    ):
        """Build the chunk-boundary checkpoint policy ``drive`` paths share.

        Same parameter names and semantics as :func:`repro.parallel.ingest`:
        the first target snapshots to ``checkpoint_path`` every
        ``checkpoint_every`` updates and once at stream end, with positions
        kept absolute via ``start_position``.
        """
        if start_position < 0:
            raise ValueError(
                f"start_position must be non-negative, got {start_position}"
            )
        if checkpoint_path is None:
            return None
        from repro.distributed.checkpoint import (
            DEFAULT_CHECKPOINT_EVERY,
            CheckpointWriter,
        )

        writer = CheckpointWriter(
            checkpoint_path,
            targets[0],
            every=checkpoint_every
            if checkpoint_every is not None
            else DEFAULT_CHECKPOINT_EVERY,
        )
        writer.last_position = start_position
        return writer

    def drive(
        self,
        algorithms,
        updates,
        on_chunk: Optional[Callable[[int], None]] = None,
        checkpoint_path=None,
        checkpoint_every: Optional[int] = None,
        start_position: int = 0,
    ):
        """Feed ``updates`` to one algorithm (or a lockstep list of them).

        Accepts a single :class:`StreamAlgorithm` or a sequence of them; all
        algorithms see every chunk, in order, exactly as the per-update
        lockstep loops in the experiments did.  ``updates`` may be a list or
        any iterable (generators are consumed chunk by chunk).
        ``on_chunk(position)`` fires after each chunk (position = number of
        updates consumed so far, plus ``start_position``) -- experiments
        hook intermediate measurements there.

        The checkpoint parameters mirror :func:`repro.parallel.ingest`
        exactly: pass ``checkpoint_path`` and the first algorithm snapshots
        there every ``checkpoint_every`` updates at chunk boundaries (plus
        once at stream end), with ``start_position`` keeping recorded
        positions absolute across resumes.

        Returns the algorithm (or list) for chaining.
        """
        single = isinstance(algorithms, StreamAlgorithm)
        targets = [algorithms] if single else list(algorithms)
        writer = self._checkpoint_writer(
            targets, checkpoint_path, checkpoint_every, start_position
        )
        position = start_position
        chunk_log: list = []
        try:
            for chunk in _chunked(updates, self.chunk_size):
                observing = _obs_registry.enabled
                started = time.perf_counter() if observing else 0.0
                try:
                    items, deltas = updates_to_arrays(chunk)
                except OverflowError:
                    # Beyond-int64 coefficients: exact per-update arithmetic.
                    for target in targets:
                        for update in chunk:
                            target.feed(update)
                else:
                    for target in targets:
                        target.feed_batch(items, deltas)
                position += len(chunk)
                if observing:
                    chunk_log.append(
                        (started, time.perf_counter() - started, position,
                         len(chunk))
                    )
                if on_chunk is not None:
                    on_chunk(position)
                if writer is not None:
                    writer.maybe(position)
        finally:
            _flush_chunks("drive", chunk_log)
        if writer is not None and writer.last_position != position:
            writer.flush(position)
        return algorithms

    def drive_arrays(
        self,
        algorithms,
        items,
        deltas,
        on_chunk: Optional[Callable[[int], None]] = None,
        checkpoint_path=None,
        checkpoint_every: Optional[int] = None,
        start_position: int = 0,
    ):
        """Feed a pre-built ``(items, deltas)`` array pair in chunks.

        The array-native fast path for workload generators that never
        materialize :class:`Update` objects at all.  ``on_chunk`` and the
        checkpoint parameters behave exactly as in :meth:`drive`.
        """
        single = isinstance(algorithms, StreamAlgorithm)
        targets = [algorithms] if single else list(algorithms)
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if len(items) != len(deltas):
            raise ValueError(
                f"items/deltas length mismatch: {len(items)} != {len(deltas)}"
            )
        writer = self._checkpoint_writer(
            targets, checkpoint_path, checkpoint_every, start_position
        )
        position = start_position
        chunk_log: list = []
        try:
            for start in range(0, len(items), self.chunk_size):
                observing = _obs_registry.enabled
                started = time.perf_counter() if observing else 0.0
                sl = slice(start, start + self.chunk_size)
                for target in targets:
                    target.feed_batch(items[sl], deltas[sl])
                position = start_position + min(
                    start + self.chunk_size, len(items)
                )
                if observing:
                    chunk_log.append(
                        (started, time.perf_counter() - started, position,
                         position - start_position - start)
                    )
                if on_chunk is not None:
                    on_chunk(position)
                if writer is not None:
                    writer.maybe(position)
        finally:
            _flush_chunks("drive_arrays", chunk_log)
        if writer is not None and writer.last_position != position:
            writer.flush(position)
        return algorithms

    # -- games --------------------------------------------------------------

    def play(
        self,
        algorithm: StreamAlgorithm,
        adversary: WhiteBoxAdversary,
        ground_truth: GroundTruth,
        validator: Validator,
        max_rounds: int,
        query_every: int = 1,
        record_failures: int = 16,
        retain_history: Optional[int] = 64,
        probe_items=None,
    ) -> GameResult:
        """Play the white-box game, batching when the adversary permits.

        Adaptive adversaries (``adversary.adaptive`` is ``True``, the safe
        default) need the state view after *every* update, so the engine
        degrades to chunk size 1 by delegating to
        :func:`repro.core.game.run_game` unchanged.  Non-adaptive adversaries
        committed to their stream up front; their updates are pulled in
        chunks and batch-fed to the algorithm and the ground truth.

        Batched-mode semantics (explicitly coarser than ``run_game``):

        * Validation happens at chunk boundaries, at the first boundary
          where at least ``query_every`` rounds have elapsed since the last
          check (plus always at stream end).  ``query_every`` finer than the
          chunk size is therefore coarsened to the chunk size, and
          ``total_failures`` counts failed *checkpoints*, not failed rounds
          -- don't compare it numerically against a per-round game.
        * ``probe_items`` (either mode) turns every validation checkpoint
          into a batched point-query round as well: one vectorized
          ``estimate_batch(probe_items)`` call per checkpoint, recorded in
          ``checkpoint_estimates`` -- the batched per-round query path,
          answering exactly what per-item ``estimate`` calls would.
        * ``retain_history`` does not apply: no per-round history is
          accumulated (the adversary declared it reads none).  Instead the
          result carries the array-native transcript: ``chunk_rounds`` /
          ``chunk_space_bits`` sample space at every chunk boundary and
          ``checkpoint_rounds`` / ``checkpoint_answers`` record each
          validated answer (see :meth:`GameResult.trace_arrays`).
        """
        if getattr(adversary, "adaptive", True) or self.chunk_size == 1:
            return run_game(
                algorithm,
                adversary,
                ground_truth,
                validator,
                max_rounds,
                query_every=query_every,
                record_failures=record_failures,
                retain_history=retain_history,
                probe_items=probe_items,
            )
        return self._play_batched(
            algorithm,
            adversary,
            ground_truth,
            validator,
            max_rounds,
            query_every,
            record_failures,
            probe_items,
        )

    def _play_batched(
        self,
        algorithm: StreamAlgorithm,
        adversary: WhiteBoxAdversary,
        ground_truth: GroundTruth,
        validator: Validator,
        max_rounds: int,
        query_every: int,
        record_failures: int,
        probe_items=None,
    ) -> GameResult:
        """Chunked game loop for adversaries that committed to their stream."""
        if query_every <= 0:
            raise ValueError(f"query_every must be positive, got {query_every}")
        result = GameResult(rounds_played=0)
        failure_count = 0
        round_index = 0
        last_checked = 0
        last_update = None
        ended = False

        def validate() -> None:
            nonlocal failure_count, last_checked
            last_checked = round_index
            answer = algorithm.query()
            truth = ground_truth.truth()
            result.final_answer = answer
            result.final_truth = truth
            result.checkpoint_rounds.append(round_index)
            result.checkpoint_answers.append(answer)
            if probe_items is not None:
                result.checkpoint_estimates.append(
                    algorithm.estimate_batch(probe_items)
                )
            if not validator(answer, truth):
                failure_count += 1
                if len(result.failures) < record_failures:
                    result.failures.append(
                        RoundRecord(
                            round_index - 1, last_update, answer, truth, False
                        )
                    )
        # Non-adaptive adversaries may expose their committed stream as a
        # slice; otherwise we pull per-round with history-free views.
        committed = getattr(adversary, "committed_updates", None)
        chunk_log: list = []

        while round_index < max_rounds and not ended:
            want = min(self.chunk_size, max_rounds - round_index)
            if committed is not None:
                pending = list(committed(round_index, want))
                if len(pending) < want:
                    result.adversary_gave_up = True
                    ended = True
            else:
                pending = []
                while len(pending) < want:
                    view = _blind_view(round_index + len(pending))
                    try:
                        update = adversary.next_update(view)
                    except BudgetExhausted:
                        result.budget_exhausted = True
                        ended = True
                        break
                    if update is None:
                        result.adversary_gave_up = True
                        ended = True
                        break
                    pending.append(update)
            if not pending:
                break

            ingest_batch = getattr(ground_truth, "ingest_batch", None)
            observing = _obs_registry.enabled
            started = time.perf_counter() if observing else 0.0
            try:
                items, deltas = updates_to_arrays(pending)
            except OverflowError:
                for update in pending:
                    ground_truth.ingest(update)
                    algorithm.feed(update)
            else:
                if ingest_batch is not None:
                    ingest_batch(items, deltas)
                else:
                    for update in pending:
                        ground_truth.ingest(update)
                algorithm.feed_batch(items, deltas)
            round_index += len(pending)
            if observing:
                chunk_log.append(
                    (started, time.perf_counter() - started, round_index,
                     len(pending))
                )
            result.rounds_played = round_index
            last_update = pending[-1]

            at_end = ended or round_index >= max_rounds
            if round_index - last_checked >= query_every or at_end:
                validate()
            space = algorithm.space_bits()
            result.final_space_bits = space
            result.max_space_bits = max(result.max_space_bits, space)
            # Array-native game transcript: one (position, space) sample per
            # chunk; answers were sampled inside validate().
            result.chunk_rounds.append(round_index)
            result.chunk_space_bits.append(space)

        _flush_chunks("game", chunk_log)
        # The stream may have ended on an empty pull after unvalidated
        # chunks; always leave with a fresh final answer.
        if round_index > last_checked:
            validate()
        result.total_failures = failure_count
        return result


def _chunked(updates, size: int):
    """Yield ``updates`` in lists of at most ``size`` (sequence or iterable)."""
    if hasattr(updates, "__len__") and hasattr(updates, "__getitem__"):
        for start in range(0, len(updates), size):
            yield updates[start : start + size]
        return
    iterator = iter(updates)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _blind_view(round_index: int):
    """A history-free view for non-adaptive adversaries inside a chunk.

    They declared (``adaptive = False``) that their choices never read
    states/outputs, so only ``round_index`` is populated.
    """
    from repro.core.adversary import AdversaryView

    return AdversaryView(
        round_index=round_index, updates=(), states=(), outputs=()
    )
