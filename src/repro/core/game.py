"""The white-box adversarial game (Section 1 of the paper), executable.

``run_game`` plays the m-round game between a :class:`StreamAlgorithm` and a
:class:`WhiteBoxAdversary`:

1. the adversary computes ``u_t`` from all previous updates, states,
   randomness and outputs;
2. the algorithm consumes ``u_t`` (drawing fresh witnessed randomness) and
   answers the query;
3. the adversary observes the response, the new internal state and the new
   random bits.

A :class:`GroundTruth` tracks the exact answer alongside, and a *validator*
decides whether each response is acceptable (e.g. "within ``(1 + eps)``" or
"contains every true heavy hitter").  The adversary wins if any round's
response is invalid.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.adversary import AdversaryView, BudgetExhausted, WhiteBoxAdversary
from repro.core.algorithm import StateView, StreamAlgorithm
from repro.core.stream import FrequencyVector, Update

__all__ = ["GroundTruth", "RoundRecord", "GameResult", "run_game", "frequency_truth"]

Validator = Callable[[Any, Any], bool]


class GroundTruth:
    """Exact side-computation paired with a truth function.

    ``ingest`` mirrors the stream; ``truth()`` returns the exact answer to
    the game's query at the current time.
    """

    def __init__(
        self,
        ingest: Callable[[Update], None],
        truth: Callable[[], Any],
        ingest_batch: Optional[Callable[[Any, Any], None]] = None,
    ) -> None:
        self.ingest = ingest
        self.truth = truth
        #: Optional vectorized mirror: ``ingest_batch(items, deltas)``.  The
        #: engine's batched game loop uses it when present; ``None`` means
        #: loop over ``ingest``.
        self.ingest_batch = ingest_batch


def frequency_truth(
    universe_size: int,
    truth_of: Callable[[FrequencyVector], Any],
    allow_negative: bool = True,
) -> GroundTruth:
    """Ground truth backed by an exact :class:`FrequencyVector`."""
    vector = FrequencyVector(universe_size, allow_negative=allow_negative)
    return GroundTruth(
        ingest=vector.apply,
        truth=lambda: truth_of(vector),
        ingest_batch=vector.apply_batch,
    )


@dataclass(frozen=True)
class RoundRecord:
    """Outcome of one game round."""

    round_index: int
    update: Update
    answer: Any
    truth: Any
    valid: bool


@dataclass
class GameResult:
    """Outcome of a full game.

    The ``chunk_*`` / ``checkpoint_*`` lists are the array-native game
    transcript recorded by the engine's batched loop
    (:meth:`repro.core.engine.StreamEngine._play_batched`): space after
    every chunk, and the answer at every validation checkpoint.  The
    per-round loop (:func:`run_game`) leaves them empty -- its adversaries
    read full per-round history through :class:`AdversaryView` instead.
    """

    rounds_played: int
    failures: list[RoundRecord] = field(default_factory=list)
    total_failures: int = 0
    adversary_gave_up: bool = False
    budget_exhausted: bool = False
    final_answer: Any = None
    final_truth: Any = None
    final_space_bits: int = 0
    max_space_bits: int = 0
    #: Stream position after each batched chunk (cumulative rounds).
    chunk_rounds: list[int] = field(default_factory=list)
    #: ``space_bits()`` after each batched chunk (pairs with chunk_rounds).
    chunk_space_bits: list[int] = field(default_factory=list)
    #: Stream positions at which the answer was validated.
    checkpoint_rounds: list[int] = field(default_factory=list)
    #: The answers produced at those checkpoints.
    checkpoint_answers: list[Any] = field(default_factory=list)
    #: Batched per-round probe answers: one ``estimate_batch(probe_items)``
    #: array per validation checkpoint, recorded by either game loop when
    #: the caller passes ``probe_items`` (the vectorized query path).
    checkpoint_estimates: list[Any] = field(default_factory=list)

    @property
    def algorithm_won(self) -> bool:
        """True if the algorithm was correct at every round it was queried."""
        return self.total_failures == 0

    @property
    def first_failure(self) -> Optional[RoundRecord]:
        return self.failures[0] if self.failures else None

    def trace_arrays(self) -> dict[str, "np.ndarray"]:
        """The chunk/checkpoint traces as numpy arrays (experiment tables).

        ``rounds``/``space_bits`` trace the space trajectory per chunk;
        ``checkpoint_rounds``/``checkpoint_answers`` trace the answers
        (answers stay ``object`` dtype -- queries may return sets/dicts).
        """
        import numpy as np

        return {
            "rounds": np.asarray(self.chunk_rounds, dtype=np.int64),
            "space_bits": np.asarray(self.chunk_space_bits, dtype=np.int64),
            "checkpoint_rounds": np.asarray(self.checkpoint_rounds, dtype=np.int64),
            "checkpoint_answers": np.asarray(self.checkpoint_answers, dtype=object),
            # One row per checkpoint, one column per probe item (the probe
            # set is fixed for a game, so the rows always stack).
            "checkpoint_estimates": (
                np.stack(self.checkpoint_estimates)
                if self.checkpoint_estimates
                else np.empty((0, 0))
            ),
        }


def run_game(
    algorithm: StreamAlgorithm,
    adversary: WhiteBoxAdversary,
    ground_truth: GroundTruth,
    validator: Validator,
    max_rounds: int,
    query_every: int = 1,
    record_failures: int = 16,
    retain_history: Optional[int] = 64,
    probe_items=None,
) -> GameResult:
    """Play the white-box game for up to ``max_rounds`` rounds.

    Parameters
    ----------
    query_every:
        Query (and validate) the algorithm every this-many rounds.  The model
        queries at every step; large experiments may thin the checks for
        speed without changing who can win.
    record_failures:
        Keep at most this many failing rounds in the result (all failures
        still count toward ``algorithm_won``).
    retain_history:
        How many recent rounds of (update, state, output) the adversary view
        carries (``None`` = all).  The model grants the adversary the full
        history; bounding it is a harness memory optimization -- every
        adversary implemented in :mod:`repro.adversaries` decides from the
        latest state, and tests that need full history pass ``None``.
    probe_items:
        Optional array of items to point-query at every validation round
        through one vectorized ``estimate_batch`` call -- the batched
        per-round query path.  Each probe's answers land in
        ``checkpoint_estimates`` with the round recorded in
        ``checkpoint_rounds``; answers are bit/float-identical to calling
        the scalar ``estimate`` per item (the batching contract).

    Returns
    -------
    GameResult with per-round failures and space accounting.
    """
    if max_rounds <= 0:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    if query_every <= 0:
        raise ValueError(f"query_every must be positive, got {query_every}")

    updates: deque[Update] = deque(maxlen=retain_history)
    states: deque[StateView] = deque(maxlen=retain_history)
    outputs: deque[Any] = deque(maxlen=retain_history)
    result = GameResult(rounds_played=0)
    failure_count = 0

    for round_index in range(max_rounds):
        view = AdversaryView(
            round_index=round_index,
            updates=tuple(updates),
            states=tuple(states),
            outputs=tuple(outputs),
        )
        try:
            update = adversary.next_update(view)
        except BudgetExhausted:
            result.budget_exhausted = True
            break
        if update is None:
            result.adversary_gave_up = True
            break

        ground_truth.ingest(update)
        algorithm.feed(update)
        result.rounds_played += 1

        answer: Any = None
        if (round_index + 1) % query_every == 0 or round_index == max_rounds - 1:
            answer = algorithm.query()
            truth = ground_truth.truth()
            valid = validator(answer, truth)
            result.final_answer = answer
            result.final_truth = truth
            if probe_items is not None:
                # Keep the checkpoint lists paired, as in the batched loop.
                result.checkpoint_rounds.append(round_index + 1)
                result.checkpoint_answers.append(answer)
                result.checkpoint_estimates.append(
                    algorithm.estimate_batch(probe_items)
                )
            if not valid:
                failure_count += 1
                if len(result.failures) < record_failures:
                    result.failures.append(
                        RoundRecord(round_index, update, answer, truth, False)
                    )
        space = algorithm.space_bits()
        result.final_space_bits = space
        result.max_space_bits = max(result.max_space_bits, space)

        updates.append(update)
        states.append(algorithm.state_view())
        outputs.append(answer)

    result.total_failures = failure_count
    return result
