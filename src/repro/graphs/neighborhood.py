"""Vertex neighborhood identification (Theorem 1.3 / Theorem 1.4).

Vertex-arrival model (§2.4): each stream update is a vertex together with
its full neighbor list; the task is to report all pairs (groups) of vertices
with *identical* neighborhoods.

* :class:`CRHFNeighborhoodIdentifier` -- Theorem 1.3: hash each vertex's
  n-bit neighborhood indicator through a collision-resistant hash into a
  ``poly(n, T)`` universe and store one ``O(log n)``-bit digest per vertex:
  ``O(n log n)`` bits total, robust against polynomial-time white-box
  adversaries (a false merge is a CRHF collision).
* :class:`DeterministicNeighborhoodIdentifier` -- the deterministic
  baseline, storing neighborhoods exactly; Theorem 1.4's OR-Equality
  reduction shows ``Omega(n^2 / log n)`` bits is forced, so exact storage
  is essentially optimal and the ``~n``-factor separation from Theorem 1.3
  is real (experiment E09).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.algorithm import DeterministicAlgorithm, StreamAlgorithm
from repro.core.space import bits_for_universe
from repro.crypto.crhf import CollisionResistantHash, generate_crhf
from repro.heavyhitters.phi_eps import crhf_security_bits_for_adversary

__all__ = [
    "VertexArrival",
    "CRHFNeighborhoodIdentifier",
    "DeterministicNeighborhoodIdentifier",
    "group_identical",
]


class VertexArrival:
    """One vertex-arrival update: a vertex and its complete neighbor list."""

    __slots__ = ("vertex", "neighbors")

    def __init__(self, vertex: int, neighbors: Iterable[int]) -> None:
        self.vertex = vertex
        self.neighbors = frozenset(neighbors)


def group_identical(digests: dict[int, int]) -> tuple[frozenset[int], ...]:
    """Group vertices by digest; only groups of size >= 2 are reported."""
    by_digest: dict[int, set[int]] = {}
    for vertex, digest in digests.items():
        by_digest.setdefault(digest, set()).add(vertex)
    return tuple(
        frozenset(group) for group in by_digest.values() if len(group) >= 2
    )


class CRHFNeighborhoodIdentifier(StreamAlgorithm):
    """Theorem 1.3: O(n log n)-bit neighborhood identification via CRHF.

    The neighborhood of ``v`` is the n-bit indicator vector; its CRHF
    digest is computed incrementally over the (sorted) neighbor list, so
    the arrival can be consumed as a stream without materializing the
    vector.
    """

    name = "crhf-neighborhoods"

    def __init__(
        self,
        n_vertices: int,
        adversary_time: int = 1 << 20,
        seed: int = 0,
        crhf: CollisionResistantHash | None = None,
    ) -> None:
        if n_vertices < 1:
            raise ValueError(f"n_vertices must be >= 1, got {n_vertices}")
        super().__init__(seed=seed)
        self.n_vertices = n_vertices
        if crhf is None:
            bits = crhf_security_bits_for_adversary(
                adversary_time, max(2, n_vertices), 0.5
            )
            crhf = generate_crhf(security_bits=max(16, bits), seed=seed)
        self.crhf = crhf
        self.digests: dict[int, int] = {}

    def offer(self, arrival: VertexArrival) -> None:
        """Consume one vertex arrival."""
        if not 0 <= arrival.vertex < self.n_vertices:
            raise ValueError(f"vertex {arrival.vertex} outside [0, {self.n_vertices})")
        if any(not 0 <= u < self.n_vertices for u in arrival.neighbors):
            raise ValueError("neighbor outside the vertex set")
        # Hash the indicator vector: stream its bits through the CRHF.
        # enc(N(v)) as an n-bit integer, hashed as g^enc -- identical
        # neighborhoods give identical digests; distinct ones collide only
        # for a discrete-log-solving adversary.
        encoding = 0
        for u in sorted(arrival.neighbors):
            encoding |= 1 << u
        self.digests[arrival.vertex] = self.crhf.hash_int(encoding)

    def process(self, update) -> None:
        raise NotImplementedError(
            "vertex streams are consumed via offer(VertexArrival)"
        )

    def query(self) -> tuple[frozenset[int], ...]:
        """All groups of vertices with identical neighborhoods."""
        return group_identical(self.digests)

    def space_bits(self) -> int:
        """One digest per seen vertex: O(n log nT) as in §1.2.

        The digest width is the CRHF modulus size, ``O(log poly(n, T)) =
        O(log n + log T)`` bits.
        """
        return len(self.digests) * self.crhf.digest_bits() + self.crhf.space_bits()

    def _state_fields(self) -> dict:
        return {
            "digests": dict(self.digests),
            "crhf_params": (self.crhf.params.p, self.crhf.params.g, self.crhf.params.y),
        }


class DeterministicNeighborhoodIdentifier(DeterministicAlgorithm):
    """Exact neighborhood storage -- the Theorem 1.4 regime.

    Stores each vertex's neighbor set verbatim; space is
    ``Theta(sum of degrees * log n)`` which on the OR-Equality hard
    instances (dense bipartite-ish constructions) reaches
    ``Theta(n^2)`` bits, matching the ``Omega(n^2 / log n)`` lower bound
    up to the log factor.
    """

    name = "exact-neighborhoods"

    def __init__(self, n_vertices: int) -> None:
        super().__init__()
        self.n_vertices = n_vertices
        self.neighborhoods: dict[int, frozenset[int]] = {}

    def offer(self, arrival: VertexArrival) -> None:
        """Consume one vertex arrival (exact storage)."""
        if not 0 <= arrival.vertex < self.n_vertices:
            raise ValueError(f"vertex {arrival.vertex} outside [0, {self.n_vertices})")
        self.neighborhoods[arrival.vertex] = arrival.neighbors

    def process(self, update) -> None:
        raise NotImplementedError(
            "vertex streams are consumed via offer(VertexArrival)"
        )

    def query(self) -> tuple[frozenset[int], ...]:
        groups: dict[frozenset[int], set[int]] = {}
        for vertex, neighbors in self.neighborhoods.items():
            groups.setdefault(neighbors, set()).add(vertex)
        return tuple(
            frozenset(group) for group in groups.values() if len(group) >= 2
        )

    def space_bits(self) -> int:
        id_bits = bits_for_universe(max(2, self.n_vertices))
        return sum(
            max(1, len(neighbors)) * id_bits
            for neighbors in self.neighborhoods.values()
        ) or 1

    def _state_fields(self) -> dict:
        return {"neighborhoods": dict(self.neighborhoods)}
