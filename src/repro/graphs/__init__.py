"""Graph streams: vertex-arrival neighborhood identification (Thm 1.3/1.4)."""

from repro.graphs.neighborhood import (
    CRHFNeighborhoodIdentifier,
    DeterministicNeighborhoodIdentifier,
    VertexArrival,
    group_identical,
)

__all__ = [
    "CRHFNeighborhoodIdentifier",
    "DeterministicNeighborhoodIdentifier",
    "VertexArrival",
    "group_identical",
]
