"""The Theorem 1.11 lower bound, executable (Section 3.2).

Any deterministic ``(1 + eps)``-approximate counter for a length-``n`` bit
stream -- even with a timer -- needs ``Omega(log n)`` bits.  The proof
machinery is the interval-family dynamics of Lemmas 3.5-3.10, implemented
in :mod:`repro.counters.intervals`; this module supplies the arithmetic
that turns it into a concrete state bound:

* Lemma 3.10 caps how often a count ``k`` can be *exceptional* by
  ``eps(k)``, so ``phi_h <= sum_{k<=h} eps(k)``;
* Lemma 3.9 then yields some ``t0 <= n + 1`` with ``|I(t0)| >= h + 1``
  whenever ``(phi_h + 1) h <= n``;
* maximizing ``h`` gives the state bound ``h + 1`` and the space bound
  ``ceil(log2(h + 1))`` -- ``Theta(n^{1/3})`` states for constant
  multiplicative error, hence ``Omega(log n)`` bits.

The module also *instruments* concrete branching programs
(:mod:`repro.counters.obdd`): it measures their actual ``max_t |I(t)|`` and
confirms every correct program meets the bound while the
deliberately-undersized ``truncated_counter_program`` violates correctness
-- the two sides of the theorem.

Why this matters in the paper's architecture: the bound shows the
Theorem 1.8 reduction cannot extend to ``n``-player games (Morris counters
achieve O(log log n) bits in the white-box model while the n-player
deterministic maximum communication is Omega(log n)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.counters.intervals import ErrorFunction
from repro.counters.obdd import CounterProgram, interval_profile, program_errors

__all__ = [
    "CountingBoundCertificate",
    "counting_lower_bound",
    "best_h",
    "measure_program",
    "ProgramMeasurement",
]


@dataclass(frozen=True)
class CountingBoundCertificate:
    """The Lemma 3.9/3.10 arithmetic for one (n, eps) setting."""

    horizon: int
    h: int
    phi_h_bound: float
    min_states: int
    min_bits: int

    def explains(self) -> str:
        """One-sentence narrative of the certificate."""
        return (
            f"horizon n={self.horizon}: counts 1..{self.h} are exceptional at "
            f"most {self.phi_h_bound:.1f} times total, so some t0 <= n+1 has "
            f"|I(t0)| >= {self.min_states}, forcing >= {self.min_bits} bits"
        )


def best_h(horizon: int, error: ErrorFunction) -> int:
    """Largest ``h`` with ``(1 + sum_{k<=h} eps(k)) * h <= horizon``.

    The predicate is monotone in ``h``; the error-sum prefix is built
    incrementally while doubling upward, so the cost is ``O(h*)`` rather
    than ``O(horizon)`` -- at a billion-step horizon the answer is ~1600,
    not a billion sum terms.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")

    prefix = [0.0]  # prefix[h] = sum_{k<=h} eps(k)

    def prefix_sum(h: int) -> float:
        while len(prefix) <= h:
            prefix.append(prefix[-1] + error(len(prefix)))
        return prefix[h]

    def feasible(h: int) -> bool:
        return (1.0 + prefix_sum(h)) * h <= horizon

    if not feasible(1):
        return 0
    high = 1
    while high < horizon and feasible(min(2 * high, horizon)):
        high = min(2 * high, horizon)
    if high == horizon:
        return horizon
    low = high
    high = min(2 * high, horizon)
    while low < high:
        mid = (low + high + 1) // 2
        if feasible(mid):
            low = mid
        else:
            high = mid - 1
    return low


def counting_lower_bound(horizon: int, error: ErrorFunction) -> CountingBoundCertificate:
    """Theorem 1.11's bound for a given horizon and error function."""
    h = best_h(horizon, error)
    phi_h = sum(error(k) for k in range(1, h + 1))
    min_states = h + 1
    return CountingBoundCertificate(
        horizon=horizon,
        h=h,
        phi_h_bound=phi_h,
        min_states=min_states,
        min_bits=max(1, math.ceil(math.log2(max(2, min_states)))),
    )


@dataclass(frozen=True)
class ProgramMeasurement:
    """Measured interval-family growth of one concrete program."""

    name: str
    horizon: int
    max_intervals: int
    max_intervals_time: int
    is_correct: bool
    violations: int

    @property
    def implied_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.max_intervals))))


def measure_program(
    program: CounterProgram, horizon: int, error: ErrorFunction
) -> ProgramMeasurement:
    """Instrument a program: |I(t)| growth + correctness at every level."""
    families = interval_profile(program, horizon)
    sizes = [len(family) for family in families]
    peak = max(sizes)
    peak_time = sizes.index(peak) + 1
    violations = program_errors(program, horizon, error)
    return ProgramMeasurement(
        name=program.name,
        horizon=horizon,
        max_intervals=peak,
        max_intervals_time=peak_time,
        is_correct=not violations,
        violations=len(violations),
    )
