"""Executable lower bounds: Theorems 1.4, 1.9, 1.10, 1.11."""

from repro.lowerbounds.counting import (
    CountingBoundCertificate,
    ProgramMeasurement,
    best_h,
    counting_lower_bound,
    measure_program,
)
from repro.lowerbounds.fp_moments import (
    FpReductionRow,
    ams_factory,
    exact_f2_factory,
    f2_of_combined,
    gap_equality_f2_bridge,
    run_fp_reduction,
)
from repro.lowerbounds.neighborhood import (
    OrEqualityGraphReport,
    or_equality_graph,
    solve_or_equality,
)
from repro.lowerbounds.rank import (
    ExactDiagonalRank,
    RankReductionRow,
    gap_equality_rank_bridge,
    rank_of_combined,
    run_rank_reduction,
)

__all__ = [
    "CountingBoundCertificate",
    "ExactDiagonalRank",
    "FpReductionRow",
    "OrEqualityGraphReport",
    "ProgramMeasurement",
    "RankReductionRow",
    "ams_factory",
    "best_h",
    "counting_lower_bound",
    "exact_f2_factory",
    "f2_of_combined",
    "gap_equality_f2_bridge",
    "gap_equality_rank_bridge",
    "measure_program",
    "or_equality_graph",
    "rank_of_combined",
    "run_fp_reduction",
    "run_rank_reduction",
    "solve_or_equality",
]
