"""Theorem 1.9 (F_p moments need Omega(n) space), executable (Theorem 3.3).

The reduction: Gap Equality rides on F_p estimation.  Alice streams her
weight-``n/2`` string's support; Bob streams his; on the combined frequency
vector ``x + y``,

    F_2(x + y) = 2n - HAM(x, y)

(overlap coordinates hold value 2, symmetric-difference coordinates hold
value 1), so a sufficiently sharp constant-factor F_2 approximation decides
``x = y`` versus ``HAM >= gap``.  Running Theorem 1.8's derandomization:

* with the exact F_2 algorithm (linear space), a deterministic protocol
  materializes and verifies exhaustively -- its message is Theta(n) bits,
  respecting the [BCW98] Omega(n) bound;
* with a sublinear AMS sketch, *no seed survives all Bob inputs* (the
  kernel adversary exists), so the reduction reports failure -- the
  empirical face of "sublinear white-box-robust F_p algorithms do not
  exist".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.comm.problems import GapEqualityProblem
from repro.comm.reduction import ReductionOutcome, StreamBridge, derandomize
from repro.core.algorithm import StreamAlgorithm
from repro.core.stream import Update
from repro.moments.ams import AMSSketch
from repro.moments.frequency import ExactFpMoment

__all__ = [
    "f2_of_combined",
    "gap_equality_f2_bridge",
    "run_fp_reduction",
    "FpReductionRow",
]


def f2_of_combined(n: int, distance: int) -> float:
    """``F_2(x + y) = 2n - d`` for weight-``n/2`` strings at distance ``d``.

    With ``w = n/2`` ones each, ``(n - d)/2`` coordinates hold value 2
    (contributing ``2(n - d)``) and ``d`` coordinates hold value 1
    (contributing ``d``): total ``2n - d``.  Equal strings give ``2n``;
    promise-far strings give at most ``2n - gap`` -- the constant-factor
    gap Theorem 3.3 exploits.
    """
    return 2.0 * n - distance


def gap_equality_f2_bridge(problem: GapEqualityProblem) -> StreamBridge:
    """Encode Gap Equality as F2 estimation with a threshold interpreter.

    The threshold sits halfway into the promise gap: estimates above
    ``2n - gap/2`` read "equal", below read "far".
    """
    threshold = 2.0 * problem.n - problem.gap / 2.0

    def to_stream(bits) -> list[Update]:
        return [Update(i, 1) for i, bit in enumerate(bits) if bit]

    return StreamBridge(
        alice_stream=to_stream,
        bob_stream=to_stream,
        interpret=lambda estimate, y: bool(estimate > threshold),
    )


@dataclass(frozen=True)
class FpReductionRow:
    """One experiment row: algorithm vs. reduction outcome."""

    algorithm: str
    n: int
    space_bits: int
    reduction_succeeded: bool
    protocol_bits: int | None
    failed_inputs: int


def run_fp_reduction(
    n: int,
    algorithm_factory: Callable[[int], StreamAlgorithm],
    gap: int | None = None,
    alice_seeds: Sequence[int] = tuple(range(8)),
    bob_seeds: Sequence[int] = tuple(range(5)),
) -> tuple[ReductionOutcome, FpReductionRow]:
    """Run the Theorem 3.3 reduction for one algorithm at size ``n``."""
    problem = GapEqualityProblem(n, gap=gap if gap is not None else max(1, n // 2))
    bridge = gap_equality_f2_bridge(problem)
    outcome = derandomize(
        problem, algorithm_factory, bridge, alice_seeds, bob_seeds
    )
    row = FpReductionRow(
        algorithm=outcome.algorithm_name,
        n=n,
        space_bits=outcome.max_state_bits,
        reduction_succeeded=outcome.succeeded,
        protocol_bits=outcome.report.message_bits if outcome.report else None,
        failed_inputs=len(outcome.failed_inputs),
    )
    return outcome, row


def exact_f2_factory(n: int) -> Callable[[int], StreamAlgorithm]:
    """The linear-space survivor: exact F2."""
    return lambda seed: ExactFpMoment(universe_size=n, p=2)


def ams_factory(n: int, rows: int) -> Callable[[int], StreamAlgorithm]:
    """The sublinear victim: an AMS sketch with ``rows`` sign rows."""
    return lambda seed: AMSSketch(universe_size=n, rows=rows, seed=seed)
