"""Theorem 1.10 (matrix rank needs Omega(n) space), executable.

Same template as the F_p bound, with rank as the distinguishing statistic:
Alice's weight-``n/2`` string becomes the diagonal matrix ``diag(x)``, Bob
adds ``diag(y)``; the combined matrix is ``diag(x + y)`` whose rank is the
support size

    rank(diag(x + y)) = |support(x + y)| = (n + HAM(x, y)) / 2

(overlapping ones give value 2 -- still nonzero; symmetric-difference
coordinates give 1; zeros elsewhere).  Equal strings: rank ``n/2``.
Promise-far strings: rank ``>= n/2 + gap/2`` -- a constant-factor gap, so a
C-approximation to rank decides Gap Equality and inherits its Omega(n)
deterministic bound through Theorem 1.8.

The matrix stream uses the packed (row, col) item encoding of
:class:`repro.linalg.rank_decision.RankDecision`, so both the exact-rank
algorithm and the SIS rank sketch plug straight into the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.comm.problems import GapEqualityProblem
from repro.comm.reduction import ReductionOutcome, StreamBridge, derandomize
from repro.core.algorithm import DeterministicAlgorithm, StreamAlgorithm
from repro.core.space import bits_for_signed_int, bits_for_universe
from repro.core.stream import Update

__all__ = [
    "rank_of_combined",
    "gap_equality_rank_bridge",
    "ExactDiagonalRank",
    "run_rank_reduction",
    "RankReductionRow",
]


def rank_of_combined(n: int, distance: int) -> int:
    """``rank(diag(x + y)) = (n + d) / 2`` for weight-``n/2`` strings."""
    return (n + distance) // 2


class ExactDiagonalRank(DeterministicAlgorithm):
    """Exact rank of a streamed diagonal matrix: the linear-space survivor.

    Tracks the diagonal exactly (Theta(n) bits) and reports its support
    size -- the rank of a diagonal matrix.
    """

    name = "exact-diagonal-rank"

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.diagonal: dict[int, int] = {}

    def process(self, update: Update) -> None:
        # Packed encoding: item = row * n + col; diagonal updates only.
        row, col = divmod(update.item, self.n)
        if row != col:
            raise ValueError("diagonal-rank stream must update the diagonal")
        value = self.diagonal.get(row, 0) + update.delta
        if value == 0:
            self.diagonal.pop(row, None)
        else:
            self.diagonal[row] = value

    def query(self) -> int:
        return len(self.diagonal)

    def space_bits(self) -> int:
        id_bits = bits_for_universe(max(2, self.n))
        return sum(
            id_bits + bits_for_signed_int(v) for v in self.diagonal.values()
        ) or 1

    def _state_fields(self) -> dict:
        return {"diagonal": dict(self.diagonal)}


def gap_equality_rank_bridge(problem: GapEqualityProblem) -> StreamBridge:
    """Encode Gap Equality as rank estimation on ``diag(x + y)``."""
    n = problem.n
    threshold = n / 2.0 + problem.gap / 4.0

    def to_stream(bits) -> list[Update]:
        return [Update(i * n + i, 1) for i, bit in enumerate(bits) if bit]

    return StreamBridge(
        alice_stream=to_stream,
        bob_stream=to_stream,
        interpret=lambda rank, y: bool(rank < threshold),
    )


@dataclass(frozen=True)
class RankReductionRow:
    algorithm: str
    n: int
    space_bits: int
    reduction_succeeded: bool
    protocol_bits: int | None
    failed_inputs: int


def run_rank_reduction(
    n: int,
    algorithm_factory: Callable[[int], StreamAlgorithm],
    gap: int | None = None,
    alice_seeds: Sequence[int] = tuple(range(4)),
    bob_seeds: Sequence[int] = tuple(range(3)),
) -> tuple[ReductionOutcome, RankReductionRow]:
    """Run the Theorem 1.10 reduction for one algorithm at size ``n``."""
    problem = GapEqualityProblem(n, gap=gap if gap is not None else max(2, n // 2))
    bridge = gap_equality_rank_bridge(problem)
    outcome = derandomize(problem, algorithm_factory, bridge, alice_seeds, bob_seeds)
    row = RankReductionRow(
        algorithm=outcome.algorithm_name,
        n=n,
        space_bits=outcome.max_state_bits,
        reduction_succeeded=outcome.succeeded,
        protocol_bits=outcome.report.message_bits if outcome.report else None,
        failed_inputs=len(outcome.failed_inputs),
    )
    return outcome, row
