"""Theorem 1.4: deterministic neighborhood identification needs Omega(n^2/log n).

The reduction (proof of Theorem 1.4): an OR-Equality instance with
``k = n / log n`` string pairs becomes a 3n-vertex graph --

* vertices ``u_1..u_n`` encode Alice's strings: ``u_i ~ r_j`` iff
  ``x_i[j] = 1``;
* vertices ``v_1..v_n`` encode Bob's strings the same way;
* reference vertices ``r_1..r_n`` carry the encodings.

Then ``N(u_i) = N(v_i)`` iff ``x_i = y_i``, so solving neighborhood
identification solves OrEq_{n,k}, inheriting [KW09]'s Omega(nk) bound.

This module builds the hard instances, runs both identifiers on them, and
confirms (a) correctness of the answers and (b) the space gap: the exact
identifier pays ``Theta(n^2)`` bits on dense instances while the CRHF
identifier (Theorem 1.3) pays ``O(n log n)`` -- experiment E09's
separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.neighborhood import (
    CRHFNeighborhoodIdentifier,
    DeterministicNeighborhoodIdentifier,
    VertexArrival,
)

__all__ = [
    "or_equality_graph",
    "solve_or_equality",
    "OrEqualityGraphReport",
    "randomized_lower_bound_bits",
    "crhf_identifier_is_tight",
]

Bits = Sequence[int]


def or_equality_graph(xs: Sequence[Bits], ys: Sequence[Bits]) -> tuple[int, list[VertexArrival]]:
    """Build the Theorem 1.4 graph for an OrEq instance.

    ``xs`` and ``ys`` are k strings of length ``n`` each.  Vertex layout:
    ``u_i = i``, ``v_i = k + i``, ``r_j = 2k + j``; total ``2k + n``
    vertices.  Returns (vertex count, arrival list).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same number of strings")
    if not xs:
        raise ValueError("need at least one string pair")
    n = len(xs[0])
    if any(len(s) != n for s in list(xs) + list(ys)):
        raise ValueError("all strings must share the same length")
    k = len(xs)
    total = 2 * k + n

    arrivals = []
    reference_neighbors: dict[int, set[int]] = {j: set() for j in range(n)}
    for i, x in enumerate(xs):
        neighbors = [2 * k + j for j, bit in enumerate(x) if bit]
        for j, bit in enumerate(x):
            if bit:
                reference_neighbors[j].add(i)
        arrivals.append(VertexArrival(i, neighbors))
    for i, y in enumerate(ys):
        neighbors = [2 * k + j for j, bit in enumerate(y) if bit]
        for j, bit in enumerate(y):
            if bit:
                reference_neighbors[j].add(k + i)
        arrivals.append(VertexArrival(k + i, neighbors))
    for j in range(n):
        arrivals.append(VertexArrival(2 * k + j, reference_neighbors[j]))
    return total, arrivals


def randomized_lower_bound_bits(n_vertices: int) -> int:
    """Corollary 2.19: even randomized identification needs Omega(n log n).

    Via Theorem 2.18 [MWY15]'s Omega(n log k) one-way bound with k = n
    (Alice's n length-n strings become n neighborhoods): any randomized
    algorithm that simultaneously reports all identical-neighborhood pairs
    with probability 3/4 uses at least ``c * n * log2(n)`` bits.  We return
    the bound with c = 1 (the paper states the asymptotic; the comparison
    below only uses the growth rate).
    """
    import math

    if n_vertices < 2:
        return 1
    return n_vertices * max(1, math.floor(math.log2(n_vertices)))


def crhf_identifier_is_tight(n_vertices: int, measured_bits: int) -> bool:
    """Is a measured CRHF-identifier footprint within O(1) of Corollary
    2.19's floor?  Theorem 1.3 is tight against it ("we remark that
    Theorem 1.3 is tight"); the experiments check measured/floor stays
    bounded as n grows."""
    floor = randomized_lower_bound_bits(n_vertices)
    return floor <= measured_bits <= 64 * floor


@dataclass(frozen=True)
class OrEqualityGraphReport:
    """Outcome of solving one OrEq instance through neighborhoods."""

    k: int
    n: int
    answer: tuple[int, ...]
    truth: tuple[int, ...]
    correct: bool
    space_bits: int


def solve_or_equality(
    xs: Sequence[Bits],
    ys: Sequence[Bits],
    use_crhf: bool = False,
    adversary_time: int = 1 << 20,
    seed: int = 0,
) -> OrEqualityGraphReport:
    """Solve OrEq via neighborhood identification on the reduction graph."""
    k = len(xs)
    n = len(xs[0])
    total, arrivals = or_equality_graph(xs, ys)
    if use_crhf:
        identifier = CRHFNeighborhoodIdentifier(
            total, adversary_time=adversary_time, seed=seed
        )
    else:
        identifier = DeterministicNeighborhoodIdentifier(total)
    for arrival in arrivals:
        identifier.offer(arrival)
    groups = identifier.query()
    answer = []
    for i in range(k):
        paired = any(i in group and (k + i) in group for group in groups)
        answer.append(int(paired))
    truth = tuple(int(tuple(x) == tuple(y)) for x, y in zip(xs, ys))
    return OrEqualityGraphReport(
        k=k,
        n=n,
        answer=tuple(answer),
        truth=truth,
        correct=tuple(answer) == truth,
        space_bits=identifier.space_bits(),
    )
