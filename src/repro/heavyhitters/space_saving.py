"""SpaceSaving summary [Metwally et al.], substrate for the HHH algorithm.

The paper's deterministic hierarchical-heavy-hitters baseline ([TMS12],
Theorem 2.11) is built on SpaceSaving, whose guarantee with ``k`` counters is

    f_i  <=  estimate(i)  <=  f_i + offered / k,

i.e. an *over*-estimate with bounded error (the dual of Misra-Gries).
Deterministic, hence white-box robust.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import bits_for_int, bits_for_universe
from repro.core.stream import lookup_counters_batch

__all__ = ["SpaceSaving"]


class SpaceSaving:
    """The classic summary: evict the minimum, inherit its count."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters: dict[int, int] = {}
        self.offered = 0

    def offer(self, item: int, count: int = 1) -> None:
        """Insert ``count`` copies of ``item``."""
        if count < 0:
            raise ValueError("SpaceSaving accepts insertions only")
        if count == 0:
            return
        self.offered += count
        if item in self.counters:
            self.counters[item] += count
            return
        if len(self.counters) < self.capacity:
            self.counters[item] = count
            return
        victim = min(self.counters, key=self.counters.__getitem__)
        inherited = self.counters.pop(victim)
        self.counters[item] = inherited + count

    def estimate(self, item: int) -> int:
        """Upper-bound estimate: ``f_i <= est <= f_i + offered/capacity``.

        Items not tracked are bounded by the minimum counter (the classic
        SpaceSaving property); we return that bound for absent items.
        """
        if item in self.counters:
            return self.counters[item]
        if len(self.counters) < self.capacity:
            return 0
        return min(self.counters.values())

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized :meth:`estimate` over a probe array.

        One sorted dict-to-array lookup with the SpaceSaving absent-item
        default (0 while slots remain, the minimum counter once full);
        identical integers to the scalar path.
        """
        if len(self.counters) < self.capacity:
            default = 0
        else:
            default = min(self.counters.values())
        return lookup_counters_batch(self.counters, items, default=default)

    def items(self) -> dict[int, int]:
        """The current summary (item -> estimate)."""
        return dict(self.counters)

    def heavy_hitters(self, threshold: float) -> frozenset[int]:
        """Items whose estimate meets ``threshold * offered``."""
        bar = threshold * self.offered
        return frozenset(k for k, v in self.counters.items() if v >= bar)

    @property
    def error_bound(self) -> float:
        """Worst-case overestimate: ``offered / capacity``."""
        return self.offered / self.capacity

    def space_bits(self, universe_size: int) -> int:
        """Capacity slots of (id + counter) registers."""
        id_bits = bits_for_universe(universe_size)
        counter_bits = bits_for_int(max(1, self.offered))
        return self.capacity * (id_bits + counter_bits)
