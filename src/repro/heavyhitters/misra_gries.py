"""Misra-Gries frequent-items summary (Theorem 2.2, [MG82]).

The deterministic baseline the paper's Theorem 1.1 competes against: with
capacity ``k = ceil(1/eps)`` counters it returns estimates satisfying

    f_i - m / (k + 1)  <=  estimate(i)  <=  f_i,

so every item with ``f_i > eps m`` survives in the summary.  Deterministic,
hence trivially white-box robust -- but each counter needs ``log m`` bits,
which is the cost Theorem 1.1 removes.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import DeterministicAlgorithm
from repro.core.space import bits_for_int, bits_for_universe
from repro.core.stream import Update, lookup_counters_batch

__all__ = ["MisraGries", "MisraGriesAlgorithm"]


class MisraGries:
    """The classic summary: ``capacity`` counters, decrement-all on overflow."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters: dict[int, int] = {}
        self.offered = 0

    def offer(self, item: int, count: int = 1) -> None:
        """Insert ``count`` copies of ``item``."""
        if count < 0:
            raise ValueError("Misra-Gries accepts insertions only")
        if count == 0:
            return
        self.offered += count
        if item in self.counters:
            self.counters[item] += count
            return
        if len(self.counters) < self.capacity:
            self.counters[item] = count
            return
        # Decrement-all by the limiting amount, then recurse on the rest.
        decrement = min(count, min(self.counters.values()))
        survivors = {}
        for key, value in self.counters.items():
            if value > decrement:
                survivors[key] = value - decrement
        self.counters = survivors
        remaining = count - decrement
        if remaining > 0:
            self.offered -= remaining  # offer() re-adds it
            self.offer(item, remaining)

    def estimate(self, item: int) -> int:
        """Lower-bound estimate: ``f_i - offered/(capacity+1) <= est <= f_i``."""
        return self.counters.get(item, 0)

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized :meth:`estimate` over a probe array.

        One sorted dict-to-array lookup
        (:func:`repro.core.stream.lookup_counters_batch`); identical
        integers to the scalar path, with the exact-Python fallback for
        beyond-int64 counters.
        """
        return lookup_counters_batch(self.counters, items, default=0)

    def items(self) -> dict[int, int]:
        """The current summary (item -> estimate)."""
        return dict(self.counters)

    def heavy_hitters(self, threshold: float) -> frozenset[int]:
        """Items whose *estimate* meets ``threshold * offered``."""
        bar = threshold * self.offered
        return frozenset(k for k, v in self.counters.items() if v >= bar)

    @property
    def error_bound(self) -> float:
        """Worst-case underestimate: ``offered / (capacity + 1)``."""
        return self.offered / (self.capacity + 1)

    def space_bits(self, universe_size: int) -> int:
        """``capacity`` slots, each an id (log n) plus a counter register.

        Counter registers are sized for the stream seen so far (log m bits)
        -- the term Theorem 1.1's algorithm avoids.  Empty slots are still
        charged: a deterministic algorithm must reserve them.
        """
        id_bits = bits_for_universe(universe_size)
        counter_bits = bits_for_int(max(1, self.offered))
        return self.capacity * (id_bits + counter_bits)


class MisraGriesAlgorithm(DeterministicAlgorithm):
    """Game-ready wrapper solving epsilon-L1 heavy hitters deterministically."""

    name = "misra-gries"

    def __init__(self, universe_size: int, accuracy: float) -> None:
        if not 0 < accuracy < 1:
            raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
        super().__init__()
        self.universe_size = universe_size
        self.accuracy = accuracy
        # Capacity 2/eps keeps the underestimate below (eps/2) m, so every
        # eps-heavy item clears the (eps/2)-of-stream reporting threshold.
        self.summary = MisraGries(capacity=max(1, round(2.0 / accuracy)))

    def process(self, update: Update) -> None:
        self.summary.offer(update.item, update.delta)

    def query(self) -> dict[int, float]:
        """The candidate list with estimates (Theorem 2.2's output shape)."""
        return {item: float(v) for item, v in self.summary.items().items()}

    def estimate(self, item: int) -> int:
        """Deterministic lower-bound point estimate from the summary."""
        return self.summary.estimate(item)

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized summary lookups (see :meth:`MisraGries.estimate_batch`)."""
        return self.summary.estimate_batch(items)

    def heavy_hitters(self) -> frozenset[int]:
        """Items whose estimate clears (eps/2) of the stream."""
        return self.summary.heavy_hitters(self.accuracy / 2.0)

    def space_bits(self) -> int:
        return self.summary.space_bits(self.universe_size)

    def _state_fields(self) -> dict:
        return {"counters": dict(self.summary.counters), "offered": self.summary.offered}
