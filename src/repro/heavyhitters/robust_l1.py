"""Robust epsilon-L1 heavy hitters (Algorithm 2, Theorem 1.1).

The algorithm removes Misra-Gries's ``log m`` dependence by

1. clocking the stream with a *Morris counter* (white-box robust,
   ``O(log log m)`` bits) instead of an exact length counter;
2. running :class:`~repro.heavyhitters.bern_mg.BernMG` instances against
   exponentially growing guesses ``B^j`` for the stream length, with base
   ``B = 16 / eps``; and
3. keeping only ``r = 2`` guesses alive at a time (the
   :class:`~repro.heavyhitters.epochs.MorrisDoublingScheme`).

Total space: Morris clock ``O(log log m + log 1/eps)`` + two BernMG
instances ``O((1/eps)(log n + log 1/eps))`` -- no ``log m`` anywhere, which
is Theorem 1.1's advantage over Misra-Gries on long streams.

Robustness: every component is individually white-box robust -- the Morris
clock (Lemma 2.1), Bernoulli sampling (Theorem 2.3: no private randomness),
and Misra-Gries (deterministic) -- and the composition introduces no secret
state for an adversary to exploit.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import StreamAlgorithm
from repro.core.randomness import WitnessedRandom
from repro.core.stream import Update
from repro.heavyhitters.bern_mg import BernMG
from repro.heavyhitters.epochs import MorrisDoublingScheme

__all__ = ["RobustL1HeavyHitters"]


class RobustL1HeavyHitters(StreamAlgorithm):
    """Algorithm 2: white-box robust epsilon-L1 heavy hitters.

    Parameters
    ----------
    universe_size:
        ``n``.
    accuracy:
        ``eps``: report all items with ``f_i >= eps ||f||_1``.
    failure_probability_per_epoch:
        The paper sets ``delta = O(eps / log m)`` to union-bound over
        epochs; callers can leave the default per-epoch constant.
    """

    name = "robust-l1-heavy-hitters"

    def __init__(
        self,
        universe_size: int,
        accuracy: float,
        failure_probability_per_epoch: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0 < accuracy < 1:
            raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.accuracy = accuracy
        self.failure_probability = failure_probability_per_epoch

        def make_instance(epoch: int, guess: int, random: WitnessedRandom) -> BernMG:
            return BernMG(
                universe_size=universe_size,
                length_guess=guess,
                accuracy=accuracy / 2.0,
                failure_probability=failure_probability_per_epoch,
                random=random,
            )

        self.scheme: MorrisDoublingScheme[BernMG] = MorrisDoublingScheme(
            base=max(2.0, 16.0 / accuracy),
            factory=make_instance,
            random=self.random,
            clock_failure_probability=failure_probability_per_epoch,
        )

    def process(self, update: Update) -> None:
        if update.delta < 0:
            raise ValueError("the heavy-hitters algorithm expects insertions")
        self.scheme.tick(update.delta)
        self.scheme.broadcast(lambda instance: instance.process(update))

    def process_batch(self, items, deltas) -> None:
        """Batched path: one clock advance + batched BernMG coin draws.

        The Morris clock absorbs the batch total in one call (its
        ``increment`` skips failed promotion coins with geometric draws),
        and each live BernMG instance keeps whole items with single
        Binomial draws (:meth:`BernMG.process_batch`) -- no per-update
        Python loop anywhere on the hot path.

        Semantics: distribution-level, like the component draws.  Epoch
        rotations coarsen to batch boundaries (the clock is advanced once
        per batch), shifting instance start points by at most one chunk --
        well inside the slack the epoch analysis already grants the
        ``(1 +- eps)``-approximate clock, since a chunk is a vanishing
        fraction of the ``B^{j-1}`` stream prefix an instance must cover.
        """
        total = 0
        for delta in deltas:
            if delta < 0:
                raise ValueError("the heavy-hitters algorithm expects insertions")
            total += int(delta)
        self.scheme.tick(total)
        self.scheme.broadcast(lambda instance: instance.process_batch(items, deltas))

    # -- queries -------------------------------------------------------------

    def query(self) -> dict[int, float]:
        """The O(1/eps) candidate list with scaled frequency estimates."""
        return self.scheme.active.candidates()

    def heavy_hitters(self) -> frozenset[int]:
        """Items estimated at ``>= (eps/2) * (Morris length estimate)``.

        Contains every true epsilon-heavy hitter (their estimates are at
        least ``(eps - O(eps)) * m``); may include items as light as
        ``~ (eps/4) m`` -- the Theorem 1.1 false-positive regime.
        """
        return self.scheme.active.heavy_hitters(
            self.accuracy / 2.0, length_estimate=self.scheme.length_estimate()
        )

    def estimate(self, item: int) -> float:
        """Scaled frequency estimate from the active instance."""
        return self.scheme.active.estimate(item)

    def estimate_batch(self, items) -> np.ndarray:
        """Batched scaled estimates from the active BernMG instance."""
        return self.scheme.active.estimate_batch(items)

    def length_estimate(self) -> float:
        """The Morris clock's stream-position estimate."""
        return self.scheme.length_estimate()

    # -- accounting -----------------------------------------------------------

    def space_bits(self) -> int:
        """Morris clock + the two live BernMG instances.  No log m term."""
        return self.scheme.space_bits(lambda instance: instance.space_bits())

    def _state_fields(self) -> dict:
        return {
            "epoch": self.scheme.epoch,
            "clock_exponent": self.scheme.clock.exponent,
            "instances": {
                j: {
                    "length_guess": inst.length_guess,
                    "probability": inst.probability,
                    "counters": dict(inst.summary.counters),
                }
                for j, inst in self.scheme.instances.items()
            },
        }
