"""CountSketch -- the canonical *linear* sketch attack target.

CountSketch is a linear map ``f -> S f`` with random sign/bucket structure.
[HW13] (cited in Section 1.1) showed a black-box adversary can *learn* such
a sketching matrix through many adaptive queries; the white-box adversary
simply reads it from the state view on round one and streams a vector in its
kernel, making the sketch blind to an arbitrarily large frequency vector.
:mod:`repro.adversaries.sketch_attack` implements that attack against this
class; the experiments use it for the Theorem 1.9 narrative (sublinear
linear sketches cannot be white-box robust).

The table is a ``depth x width`` int64 numpy array; ``process_batch``
vectorizes bucket hashing, sign evaluation, and the signed scatter add.
Estimates are computed over exact Python integers so queries are identical
whichever path filled the table.  Like CountMin, the table promotes itself
to exact object arithmetic once the absorbed |delta| mass could wrap an
int64 cell -- kernel-attack streams whose rational-elimination
coefficients grow with ``depth * width`` keep arbitrary precision.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.algorithm import MergeableSketch, StreamAlgorithm
from repro.core.space import bits_for_int, bits_for_universe
from repro.core.stream import (
    INT64_HASH_BOUND,
    INT64_SAFE_MASS,
    Update,
    add_tables_with_promotion,
    barrett_mod,
    linear_hash_rows,
    table_fingerprint,
)
from repro.crypto.modmath import next_prime

__all__ = ["CountSketch"]


class CountSketch(MergeableSketch, StreamAlgorithm):
    """Standard CountSketch: per-row bucket hash + sign hash; median estimate."""

    name = "count-sketch"

    def __init__(
        self, universe_size: int, width: int, depth: int, seed: int = 0
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.width = width
        self.depth = depth
        self.prime = next_prime(max(universe_size, width) + 1)
        self.bucket_params = [
            (self.random.randint(1, self.prime - 1), self.random.randint(0, self.prime - 1))
            for _ in range(depth)
        ]
        self.sign_params = [
            (self.random.randint(1, self.prime - 1), self.random.randint(0, self.prime - 1))
            for _ in range(depth)
        ]
        # Hash coefficients as arrays for the fused kernel entry points.
        self._bucket_a = np.array([a for a, _ in self.bucket_params], dtype=np.int64)
        self._bucket_b = np.array([b for _, b in self.bucket_params], dtype=np.int64)
        self._sign_a = np.array([a for a, _ in self.sign_params], dtype=np.int64)
        self._sign_b = np.array([b for _, b in self.sign_params], dtype=np.int64)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self._vectorizable = self.prime < INT64_HASH_BOUND
        self._absorbed_mass = 0

    def _bucket(self, row: int, item: int) -> int:
        a, b = self.bucket_params[row]
        return ((a * item + b) % self.prime) % self.width

    def _sign(self, row: int, item: int) -> int:
        a, b = self.sign_params[row]
        return 1 if ((a * item + b) % self.prime) % 2 == 0 else -1

    def _row_hashes(self, row: int, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One row's vectorized ``(buckets, signs)`` over an item array.

        The single copy of the division-free bucket/sign derivation
        (bit-identical to ``_bucket``/``_sign`` under the int64-hash
        caller contract: ``0 <= items < prime < INT64_HASH_BOUND``);
        shared by the batched update, estimate, and row-structure paths.
        """
        a, b = self.bucket_params[row]
        buckets = linear_hash_rows(items, a, b, self.prime, self.width)
        a, b = self.sign_params[row]
        signs = 1 - 2 * (barrett_mod(a * items + b, self.prime) & 1)
        return buckets, signs

    def _note_mass(self, amount: int) -> None:
        """Promote to exact (object) cells before int64 could wrap.

        Cell magnitudes are bounded by the total absorbed |delta| mass;
        see ``CountMinSketch._note_mass``.
        """
        self._absorbed_mass += amount
        if self._absorbed_mass >= INT64_SAFE_MASS and self.table.dtype != object:
            self.table = self.table.astype(object)

    def process(self, update: Update) -> None:
        self._note_mass(abs(update.delta))
        for row in range(self.depth):
            self.table[row, self._bucket(row, update.item)] += (
                self._sign(row, update.item) * update.delta
            )

    def process_batch(self, items, deltas) -> None:
        """Vectorized batch: bucket/sign hashing + signed scatter adds."""
        if not self._vectorizable:
            kernels.record_dispatch("count_sketch_scatter", "scalar")
            super().process_batch(items, deltas)
            return
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if items.size == 0:
            return
        dmin, dmax = int(deltas.min()), int(deltas.max())
        max_abs = max(abs(dmin), abs(dmax))
        self._note_mass(max_abs * items.size)
        exact = self.table.dtype == object
        if not exact and kernels.count_sketch_scatter(
            self.table, items, deltas, self._bucket_a, self._bucket_b,
            self._sign_a, self._sign_b, self.prime,
            unit_deltas=dmin == dmax == 1,
        ):
            kernels.record_dispatch("count_sketch_scatter", "native")
            return
        kernels.record_dispatch("count_sketch_scatter", "numpy")
        for row in range(self.depth):
            buckets, signs = self._row_hashes(row, items)
            signed = (
                signs.astype(object) * deltas.astype(object)
                if exact
                else signs * deltas
            )
            kernels.scatter_add(self.table[row], buckets, signed)

    # -- merging (sharded engines) ----------------------------------------

    def _merge_key(self) -> tuple:
        return (
            self.universe_size,
            self.width,
            self.depth,
            self.prime,
            self.random.seed,
            tuple(self.bucket_params),
            tuple(self.sign_params),
        )

    def _merge_state(self, other: "CountSketch") -> None:
        """Signed tables add cell-wise; promotion precedes the addition."""
        self._absorbed_mass += other._absorbed_mass
        self.table = add_tables_with_promotion(
            self.table, other.table, self._absorbed_mass
        )

    def _snapshot_state(self) -> dict:
        return {"table": self.table, "absorbed_mass": self._absorbed_mass}

    def _restore_state(self, state) -> None:
        self.table = state["table"]
        self._absorbed_mass = state["absorbed_mass"]

    def estimate(self, item: int) -> float:
        """Median-of-rows point estimate of one item's frequency."""
        values = sorted(
            self._sign(row, item) * int(self.table[row, self._bucket(row, item)])
            for row in range(self.depth)
        )
        mid = len(values) // 2
        if len(values) % 2:
            return float(values[mid])
        return (values[mid - 1] + values[mid]) / 2.0

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized median-of-rows estimates: fused hash+sign+gather+median.

        Bit/float-identical to the scalar loop: signed gathers stay in
        int64 (cell magnitudes are bounded by the absorbed mass, which is
        below ``INT64_SAFE_MASS`` whenever the table is still int64, so
        neither the sign multiply nor the even-depth midpoint sum can
        wrap), the per-probe sort reproduces the scalar path's value
        ordering (ties are between equal integers), odd depths convert
        the middle value exactly as ``float()`` does, and even depths
        compute ``(lo + hi) / 2.0`` from the exact integer sum with the
        same int64 -> float64 rounding CPython applies.  Promoted
        (object) tables and out-of-domain probes fall back to the exact
        scalar loop.
        """
        try:
            probe = np.ascontiguousarray(items, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            kernels.record_dispatch("count_sketch_estimate", "scalar")
            return super().estimate_batch(items)
        if probe.size == 0:
            return np.empty(0, dtype=np.float64)
        if (
            not self._vectorizable
            or self.table.dtype == object
            or int(probe.min()) < 0
            or int(probe.max()) >= self.prime
        ):
            kernels.record_dispatch("count_sketch_estimate", "scalar")
            return super().estimate_batch(probe)
        kernels.record_dispatch("count_sketch_estimate", "numpy")
        # Blocked so the (depth, block) signed-gather scratch stays
        # cache-resident on huge probe sets.
        out = np.empty(probe.size, dtype=np.float64)
        block = 1 << 15
        scratch = np.empty((self.depth, min(block, probe.size)), dtype=np.int64)
        mid = self.depth // 2
        for start in range(0, probe.size, block):
            piece = probe[start : start + block]
            values = scratch[:, : piece.size]
            for row in range(self.depth):
                buckets, signs = self._row_hashes(row, piece)
                np.multiply(
                    signs, self.table[row].take(buckets), out=values[row]
                )
            values.sort(axis=0)
            window = slice(start, start + piece.size)
            if self.depth % 2:
                out[window] = values[mid]
            else:
                out[window] = (values[mid - 1] + values[mid]) / 2.0
        return out

    def f2_estimate(self) -> float:
        """Median-of-rows estimate of ``F_2`` (each row's bucket-square sum).

        Row sums run as one int64 ``np.einsum`` contraction per row while
        ``width * mass^2`` provably fits (mass bounds every |cell|, so
        each square is at most ``mass^2`` and the row sum at most
        ``width * mass^2``); past that bound -- huge-coefficient attack
        streams, or already-promoted object tables -- the exact
        Python-int path takes over, so the estimate never wraps.
        """
        if (
            self.table.dtype == object
            or self._absorbed_mass**2 * self.width >= INT64_SAFE_MASS * 2
        ):
            row_estimates = sorted(
                float(sum(v * v for v in row.tolist())) for row in self.table
            )
        else:
            row_estimates = sorted(
                float(np.einsum("i,i->", row, row)) for row in self.table
            )
        mid = len(row_estimates) // 2
        if len(row_estimates) % 2:
            return row_estimates[mid]
        return (row_estimates[mid - 1] + row_estimates[mid]) / 2.0

    def query(self) -> float:
        return self.f2_estimate()

    def sketch_matrix_row_structure(
        self, items=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The sketch's linear structure as ``(buckets, signs)`` arrays.

        Two ``(depth, len(items))`` int64 ndarrays over ``items``
        (default: the whole universe): ``buckets[r, i]`` is the bucket
        row ``r`` hashes item ``i`` into and ``signs[r, i]`` its ``+-1``
        sign -- the linear map, hashed through :func:`linear_hash_rows`
        instead of materializing ``O(depth * universe)`` Python tuples.
        Exposed for the kernel attack; in the white-box model this is
        public information (it is derivable from the state view's
        parameters).
        """
        if items is None:
            items = np.arange(self.universe_size, dtype=np.int64)
        else:
            items = np.ascontiguousarray(items, dtype=np.int64)
        buckets = np.empty((self.depth, items.size), dtype=np.int64)
        signs = np.empty((self.depth, items.size), dtype=np.int64)
        if not self._vectorizable or (
            items.size
            and not 0 <= int(items.min()) <= int(items.max()) < self.prime
        ):
            # Beyond-int64 hash range, or probe items outside the
            # division-free hash domain: exact scalar hashes.
            for row in range(self.depth):
                for index, item in enumerate(items.tolist()):
                    buckets[row, index] = self._bucket(row, item)
                    signs[row, index] = self._sign(row, item)
            return buckets, signs
        for row in range(self.depth):
            buckets[row], signs[row] = self._row_hashes(row, items)
        return buckets, signs

    def space_bits(self) -> int:
        magnitude = int(np.abs(self.table).max()) if self.table.size else 1
        cell_bits = bits_for_int(max(1, magnitude)) + 1
        param_bits = 4 * self.depth * bits_for_universe(self.prime)
        return self.depth * self.width * cell_bits + param_bits

    def _state_fields(self) -> dict:
        # Fingerprinted table, as in ``CountMinSketch._state_fields``.
        return {
            "bucket_params": tuple(self.bucket_params),
            "sign_params": tuple(self.sign_params),
            "prime": self.prime,
            "width": self.width,
            "table_digest": table_fingerprint(self.table),
        }
