"""Heavy hitters: deterministic baselines, Algorithm 1/2, Theorem 1.2."""

from repro.heavyhitters.bern_mg import BernMG
from repro.heavyhitters.count_min import CountMinSketch
from repro.heavyhitters.count_sketch import CountSketch
from repro.heavyhitters.epochs import MorrisDoublingScheme
from repro.heavyhitters.misra_gries import MisraGries, MisraGriesAlgorithm
from repro.heavyhitters.phi_eps import (
    PhiEpsilonHeavyHitters,
    crhf_security_bits_for_adversary,
)
from repro.heavyhitters.robust_l1 import RobustL1HeavyHitters
from repro.heavyhitters.space_saving import SpaceSaving

__all__ = [
    "BernMG",
    "CountMinSketch",
    "CountSketch",
    "MisraGries",
    "MisraGriesAlgorithm",
    "MorrisDoublingScheme",
    "PhiEpsilonHeavyHitters",
    "RobustL1HeavyHitters",
    "SpaceSaving",
    "crhf_security_bits_for_adversary",
]
