"""BernMG (Algorithm 1): Bernoulli sampling feeding Misra-Gries.

Given an upper bound ``m`` on the stream length, each update is kept with
probability ``p = C log(n/delta) / ((eps/2)^2 m)`` and the kept updates feed
a Misra-Gries summary with threshold ``eps/2`` (capacity ``2/eps``).
Robustness is inherited from Theorem 2.3: the sampler keeps no private
randomness, and Misra-Gries is deterministic.

Frequency estimates are the MG counter scaled by ``1/p``; the additive error
is ``O(eps) * m`` (sampling noise ``(eps/2) m`` plus MG underestimate
``(eps/2) m_sampled / p``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.randomness import WitnessedRandom
from repro.core.space import bits_for_float, bits_for_int, bits_for_universe
from repro.core.stream import Update, aggregate_batch
from repro.heavyhitters.misra_gries import MisraGries
from repro.sampling.bernoulli import bernoulli_rate

__all__ = ["BernMG"]


class BernMG:
    """One Algorithm-1 instance, valid while the stream is ``<= length_guess``."""

    def __init__(
        self,
        universe_size: int,
        length_guess: int,
        accuracy: float,
        failure_probability: float,
        random: Optional[WitnessedRandom] = None,
        seed: int = 0,
    ) -> None:
        if length_guess < 1:
            raise ValueError(f"length_guess must be >= 1, got {length_guess}")
        if not 0 < accuracy < 1:
            raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
        self.universe_size = universe_size
        self.length_guess = length_guess
        self.accuracy = accuracy
        self.failure_probability = failure_probability
        self.random = random if random is not None else WitnessedRandom(seed=seed)
        self.probability = bernoulli_rate(
            universe_size, length_guess, accuracy, failure_probability
        )
        self.summary = MisraGries(capacity=max(1, int(round(2.0 / accuracy))))
        self.updates_seen = 0

    def process(self, update: Update) -> None:
        """Coin-flip the update into the summary (insertion streams).

        A delta of ``d`` is ``d`` independent coins, drawn as one Binomial
        batch -- identical distribution, O(1) time.
        """
        if update.delta < 0:
            raise ValueError("BernMG is defined for insertion streams")
        if update.delta == 0:
            return
        self.updates_seen += update.delta
        if update.delta == 1:
            kept = 1 if self.random.bernoulli(self.probability) else 0
        else:
            kept = self.random.binomial(update.delta, self.probability)
        if kept:
            self.summary.offer(update.item, kept)

    def process_batch(self, items, deltas) -> None:
        """Batch the coin flips: one Binomial draw per *unique* item.

        A batch carrying total delta ``d_i`` for item ``i`` is ``d_i``
        independent ``Bernoulli(p)`` coins however the updates were split,
        so drawing ``Binomial(d_i, p)`` once per unique item samples the
        kept counts from exactly the per-update distribution while the
        transcript shrinks from ``O(batch)`` coin entries to
        ``O(unique items)`` batched entries -- the same information, as
        :mod:`repro.core.randomness` argues for batched draws.

        Distribution-level, not bit-level, equivalence: the per-update path
        spends its coins in stream order, this path per sorted unique item,
        so the summary may resolve decrement ties differently.  Theorem
        2.3/2.2's guarantees are order-free (they bound the sampled counts
        and the MG undercount), hence unaffected.
        """
        # Validate the raw deltas (not the aggregate): the per-update path
        # rejects any negative update, even one a later one would cancel.
        if any(int(delta) < 0 for delta in deltas):
            raise ValueError("BernMG is defined for insertion streams")
        unique, aggregated = aggregate_batch(items, deltas)
        for item, delta in zip(unique, aggregated):
            if delta == 0:
                continue
            self.updates_seen += delta
            if delta == 1:
                kept = 1 if self.random.bernoulli(self.probability) else 0
            else:
                kept = self.random.binomial(delta, self.probability)
            if kept:
                self.summary.offer(item, kept)

    def estimate(self, item: int) -> float:
        """Scaled frequency estimate ``MG_count / p``."""
        return self.summary.estimate(item) / self.probability

    def estimate_batch(self, items) -> np.ndarray:
        """Batched scaled estimates: one vectorized lookup, one divide.

        Float-identical to the scalar path -- the int64 counts convert
        to float64 with the same rounding CPython's int/float division
        applies before dividing by the stored rate.
        """
        return self.summary.estimate_batch(items) / self.probability

    def candidates(self) -> dict[int, float]:
        """The O(1/eps)-sized candidate list with scaled estimates."""
        return {
            item: count / self.probability
            for item, count in self.summary.items().items()
        }

    def heavy_hitters(self, threshold: float, length_estimate: Optional[float] = None) -> frozenset[int]:
        """Items whose scaled estimate reaches ``threshold * length``.

        ``length_estimate`` defaults to the exact updates seen by this
        instance; Algorithm 2 passes the Morris estimate instead (the whole
        point being not to store the exact length).
        """
        length = self.updates_seen if length_estimate is None else length_estimate
        bar = threshold * length
        return frozenset(
            item for item, est in self.candidates().items() if est >= bar
        )

    def space_bits(self) -> int:
        """MG summary (counters sized for the *sampled* count: O(log(1/eps)
        + log log n) bits each, not log m) plus the stored sampling rate."""
        sampled = max(1, self.summary.offered)
        id_bits = bits_for_universe(self.universe_size)
        counter_bits = bits_for_int(sampled)
        summary_bits = self.summary.capacity * (id_bits + counter_bits)
        return summary_bits + bits_for_float(32)
