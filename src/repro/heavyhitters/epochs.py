"""The Morris-clocked two-guess epoch scheme shared by Algorithms 2 and 4.

Both robust heavy-hitter algorithms (and the Theorem 1.2 variant) follow the
same template, lines 1-11 of Algorithm 2 / Algorithm 4:

* a Morris counter estimates the stream position ``t`` within a constant
  factor in ``O(log log m)`` bits (exact tracking would cost ``log m``, the
  very term being eliminated);
* guesses ``B^1 < B^2 < ...`` for the stream length, with ``B = 16/eps``;
* only **two** guesses are live at any time -- the *active* one (smallest
  guess above the clock estimate, answers queries) and a *standby* one
  warming up.  When the clock passes the active guess, the active instance
  is deleted and a fresh standby started two guesses up.

Epoch arithmetic (why two guesses suffice -- the proof idea of
Theorem 1.1): the instance with guess ``B^j`` is created when the clock
crosses ``B^{j-2}``, so it misses at most a
``B^{j-2}/B^{j-1} = eps/16`` fraction of the stream it will ever be queried
on; an epsilon-heavy item of the full stream is still ``Omega(eps)``-heavy
in the suffix the instance saw.
"""

from __future__ import annotations

import math
from typing import Callable, Generic, TypeVar

from repro.core.randomness import WitnessedRandom
from repro.counters.morris import MorrisCounter

__all__ = ["MorrisDoublingScheme"]

InstanceT = TypeVar("InstanceT")

#: factory(epoch_index, length_guess, random) -> instance
InstanceFactory = Callable[[int, int, WitnessedRandom], InstanceT]


class MorrisDoublingScheme(Generic[InstanceT]):
    """Lifecycle manager for the two live per-epoch instances."""

    def __init__(
        self,
        base: float,
        factory: InstanceFactory,
        random: WitnessedRandom,
        clock_accuracy: float = 0.25,
        clock_failure_probability: float = 0.05,
    ) -> None:
        if base < 2.0:
            raise ValueError(f"base must be >= 2, got {base}")
        self.base = base
        self.factory = factory
        self.random = random
        self.clock = MorrisCounter(
            accuracy=clock_accuracy,
            failure_probability=clock_failure_probability,
            random=random.spawn("epoch-clock"),
        )
        self.epoch = 0  # c in the pseudocode
        self.instances: dict[int, InstanceT] = {}
        for j in (1, 2):  # "for i in [r], r = 2"
            self._start_instance(j)

    def guess(self, j: int) -> int:
        """The j-th stream-length guess ``ceil(B^j)``."""
        return max(1, math.ceil(self.base**j))

    def _start_instance(self, j: int) -> None:
        self.instances[j] = self.factory(j, self.guess(j), self.random.spawn(f"epoch-{j}"))

    @property
    def active_epoch(self) -> int:
        """Index of the instance answering queries."""
        return self.epoch + 1

    @property
    def active(self) -> InstanceT:
        return self.instances[self.active_epoch]

    def tick(self, count: int = 1) -> bool:
        """Advance the clock; rotate epochs if a guess was passed.

        Returns ``True`` if a rotation happened (useful for tests).
        """
        self.clock.increment(count)
        rotated = False
        while self.clock.estimate() >= self.guess(self.active_epoch):
            del self.instances[self.active_epoch]
            self.epoch += 1
            self._start_instance(self.epoch + 2)
            rotated = True
        return rotated

    def broadcast(self, action: Callable[[InstanceT], None]) -> None:
        """Apply ``action`` to every live instance (line 6: update all)."""
        for instance in self.instances.values():
            action(instance)

    def length_estimate(self) -> float:
        """The Morris clock's estimate of the stream position."""
        return self.clock.estimate()

    def space_bits(self, instance_bits: Callable[[InstanceT], int]) -> int:
        """Clock register plus the two live instances."""
        return self.clock.space_bits() + sum(
            instance_bits(instance) for instance in self.instances.values()
        )
