"""(phi, eps)-L1 heavy hitters against T-time adversaries (Theorem 1.2).

The (phi, eps) problem: report every item with ``f_i >= phi ||f||_1`` and no
item with ``f_i < (phi - eps) ||f||_1``.  The eps-side counting structure
needs ``O(1/eps)`` counters but -- and this is the theorem's point -- their
*identities* need not be full ``log n``-bit names: a collision-resistant
hash compresses each sampled identity into a universe of size
``poly(log n, 1/eps, T)``, which a ``T``-time-bounded adversary cannot make
collide.  Only the ``O(1/phi)`` candidate phi-heavy identities are kept at
full width for reporting.

Structure:

* a Morris clock (``O(log log m)`` bits);
* the Algorithm-2 epoch scheme over BernMG instances keyed by *hashed*
  identities: ``(1/eps) * O(log T + log log n + log 1/eps)`` bits;
* a SpaceSaving of capacity ``O(1/phi)`` over raw identities
  (``(1/phi) log n`` bits) supplying report candidates.

A candidate is reported iff its hashed twin's scaled estimate clears
``(phi - eps/2)`` of the Morris length estimate -- accurate counting via
the compressed table, identity via the small raw table.  Robustness holds
against adversaries that cannot find CRHF collisions within their time
budget ``T`` (Definition 2.4); the algorithm is *not*
information-theoretically secure, exactly as the paper remarks after
Theorem 1.2.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.algorithm import StreamAlgorithm
from repro.core.randomness import WitnessedRandom
from repro.core.stream import Update
from repro.crypto.crhf import generate_crhf
from repro.heavyhitters.bern_mg import BernMG
from repro.heavyhitters.epochs import MorrisDoublingScheme
from repro.heavyhitters.space_saving import SpaceSaving

__all__ = ["PhiEpsilonHeavyHitters", "crhf_security_bits_for_adversary"]


def crhf_security_bits_for_adversary(
    adversary_time: int, universe_size: int, accuracy: float
) -> int:
    """Output width making birthday collisions cost more than ``T`` time.

    A ``T``-time adversary finds a collision in a ``2^b``-point range with
    probability ``~ T^2 / 2^b``; taking ``b = 2 log2 T + log2(poly(log n,
    1/eps))`` makes that negligible, which is the ``poly(log n, 1/eps, T)``
    universe of Theorem 1.2.
    """
    if adversary_time < 2:
        raise ValueError(f"adversary_time must be >= 2, got {adversary_time}")
    slack = math.log2(max(2.0, math.log2(max(2, universe_size)))) + math.log2(
        1.0 / accuracy
    )
    return max(16, math.ceil(2 * math.log2(adversary_time) + slack + 8))


class PhiEpsilonHeavyHitters(StreamAlgorithm):
    """Theorem 1.2's algorithm, robust against ``T``-time-bounded adversaries."""

    name = "phi-eps-heavy-hitters"

    def __init__(
        self,
        universe_size: int,
        phi: float,
        accuracy: float,
        adversary_time: int = 1 << 20,
        failure_probability: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0 < accuracy <= phi < 1:
            raise ValueError(
                f"need 0 < eps <= phi < 1, got eps={accuracy}, phi={phi}"
            )
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.phi = phi
        self.accuracy = accuracy
        self.adversary_time = adversary_time
        security_bits = crhf_security_bits_for_adversary(
            adversary_time, universe_size, accuracy
        )
        self.crhf = generate_crhf(security_bits=security_bits, seed=seed)
        self.hashed_universe = self.crhf.params.p
        self._hash_cache: dict[int, int] = {}

        def make_instance(epoch: int, guess: int, random: WitnessedRandom) -> BernMG:
            return BernMG(
                universe_size=self.hashed_universe,
                length_guess=guess,
                accuracy=accuracy / 2.0,
                failure_probability=failure_probability,
                random=random,
            )

        self.scheme: MorrisDoublingScheme[BernMG] = MorrisDoublingScheme(
            base=max(2.0, 16.0 / accuracy),
            factory=make_instance,
            random=self.random,
            clock_failure_probability=failure_probability,
        )
        # Identity recovery: O(1/phi) raw-identity candidates.
        self.identities = SpaceSaving(capacity=max(1, 2 * math.ceil(1.0 / phi)))

    def _hash(self, item: int) -> int:
        """CRHF-compressed identity (a group element < p), memoized.

        The memo is a speed cache, not state the algorithm needs: entries
        are recomputable from the public parameters, so it is not charged
        to ``space_bits``.
        """
        cached = self._hash_cache.get(item)
        if cached is None:
            cached = self.crhf.hash_int(item)
            self._hash_cache[item] = cached
        return cached

    def process(self, update: Update) -> None:
        if update.delta < 0:
            raise ValueError("the heavy-hitters algorithm expects insertions")
        self.scheme.tick(update.delta)
        hashed = Update(self._hash(update.item), update.delta)
        self.scheme.broadcast(lambda instance: instance.process(hashed))
        self.identities.offer(update.item, update.delta)

    def query(self) -> frozenset[int]:
        """All phi-heavy identities, no (phi - eps)-light ones.

        Candidate filtering runs as *one* :meth:`estimate_batch` call
        over the ``O(1/phi)`` SpaceSaving identities instead of a
        per-identity ``estimate`` loop -- the same answers (the batched
        lookup is float-identical), one vectorized pass.
        """
        length = max(1.0, self.scheme.length_estimate())
        bar = (self.phi - self.accuracy / 2.0) * length
        candidates = list(self.identities.items())
        if not candidates:
            return frozenset()
        estimates = self.estimate_batch(candidates)
        return frozenset(
            item
            for item, est in zip(candidates, estimates.tolist())
            if est >= bar
        )

    def estimate(self, item: int) -> float:
        """Scaled frequency estimate via the hashed counting table."""
        return self.scheme.active.estimate(self._hash(item))

    def estimate_batch(self, items) -> np.ndarray:
        """Batched scaled estimates through the hashed counting table.

        CRHF compression stays per-item Python (one memoized modular
        exponentiation each -- that cost *is* the compression); the
        counting-table lookup and scaling batch through the active
        BernMG instance.  Float-identical to the scalar path.  Hashed
        identities beyond int64 (very large security parameters) route
        through the scalar loop.
        """
        hashed = [self._hash(int(item)) for item in items]
        try:
            probe = np.asarray(hashed, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            values = [self.scheme.active.estimate(h) for h in hashed]
            if not values:
                return np.empty(0, dtype=np.float64)
            return np.asarray(values)
        return self.scheme.active.estimate_batch(probe)

    def space_bits(self) -> int:
        """Clock + hashed-count structure + raw-identity candidates.

        The hashed BernMG charges ``O(log(hashed universe)) = O(log T +
        log log n + log 1/eps)`` bits per identity; the SpaceSaving charges
        full ``log n``-bit identities but only ``O(1/phi)`` of them.
        """
        return self.scheme.space_bits(
            lambda instance: instance.space_bits()
        ) + self.identities.space_bits(self.universe_size)

    def _state_fields(self) -> dict:
        return {
            "epoch": self.scheme.epoch,
            "crhf_params": (
                self.crhf.params.p,
                self.crhf.params.g,
                self.crhf.params.y,
            ),
            "identity_counters": dict(self.identities.counters),
            "instances": {
                j: dict(inst.summary.counters)
                for j, inst in self.scheme.instances.items()
            },
        }
