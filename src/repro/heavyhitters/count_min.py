"""CountMin sketch -- an oblivious-model baseline and white-box attack target.

CountMin is correct in the oblivious model and (with output thresholding) in
parts of the black-box adversarial model, but its guarantees lean on the
hash functions being independent of the stream.  A white-box adversary reads
the hash coefficients straight out of the state view and floods a single
cell pattern, inflating a chosen victim item's estimate without ever
inserting it -- :mod:`repro.adversaries.sketch_attack` does exactly this.
Pairwise-independent hashing is implemented honestly (random linear maps
over a prime field) so the oblivious guarantees hold in experiments.

The table is a ``depth x width`` int64 numpy array and ``process_batch``
vectorizes the whole update pipeline (row-wise ``(a * items + b) % p % w``
hashing, fused scatter adds through :mod:`repro.core.kernels`), which is
what lets the engine push 10^6-update streams through at numpy speed --
and, when the compiled kernel tier is available, through one fused
hash+scatter pass per row.  Cell counts start in int64 --
ample for the paper's ``||f||_inf <= poly(n)`` regime -- and the table
*promotes itself to exact object arithmetic* once the absorbed |delta|
mass could make any cell wrap, so kernel-attack streams with huge
coefficients keep Python's arbitrary precision on both paths.  The batch
path additionally falls back to the scalar loop when hash arithmetic
could overflow int64 (universes beyond ~3e9).
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.algorithm import MergeableSketch, StreamAlgorithm
from repro.core.space import bits_for_int, bits_for_universe
from repro.core.stream import (
    INT64_HASH_BOUND,
    INT64_SAFE_MASS,
    Update,
    add_tables_with_promotion,
    linear_hash_rows,
    table_fingerprint,
)
from repro.crypto.modmath import next_prime

__all__ = ["CountMinSketch"]


class CountMinSketch(MergeableSketch, StreamAlgorithm):
    """Standard depth x width CountMin with pairwise-independent rows."""

    name = "count-min"

    def __init__(
        self, universe_size: int, width: int, depth: int, seed: int = 0
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.width = width
        self.depth = depth
        self.prime = next_prime(max(universe_size, width) + 1)
        # h_r(x) = (a_r x + b_r mod prime) mod width  -- drawn via the
        # witnessed source: the white-box adversary sees a_r, b_r.
        self.row_params = [
            (self.random.randint(1, self.prime - 1), self.random.randint(0, self.prime - 1))
            for _ in range(depth)
        ]
        # Row coefficients as arrays for the fused kernel entry points.
        self._row_a = np.array([a for a, _ in self.row_params], dtype=np.int64)
        self._row_b = np.array([b for _, b in self.row_params], dtype=np.int64)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0
        self._vectorizable = self.prime < INT64_HASH_BOUND
        self._absorbed_mass = 0  # running |delta| upper bound, see _note_mass

    def _cell(self, row: int, item: int) -> int:
        a, b = self.row_params[row]
        return ((a * item + b) % self.prime) % self.width

    def _note_mass(self, amount: int) -> None:
        """Account absorbed |delta| mass; promote to exact arithmetic.

        No cell magnitude can exceed the total absorbed mass, so while it
        stays below ``INT64_SAFE_MASS`` the int64 table cannot wrap; past
        that the table becomes an object array of exact Python ints (same
        values, slower -- only huge-coefficient streams ever get here).
        """
        self._absorbed_mass += amount
        if self._absorbed_mass >= INT64_SAFE_MASS and self.table.dtype != object:
            self.table = self.table.astype(object)

    def process(self, update: Update) -> None:
        self._note_mass(abs(update.delta))
        self.total += update.delta
        for row in range(self.depth):
            self.table[row, self._cell(row, update.item)] += update.delta

    def process_batch(self, items, deltas) -> None:
        """Vectorized batch: row-wise hashing + scatter adds.

        Bit-identical to the per-update path (integer additions commute and
        no randomness is drawn after construction).
        """
        if not self._vectorizable:
            kernels.record_dispatch("count_min_scatter", "scalar")
            super().process_batch(items, deltas)
            return
        items = np.ascontiguousarray(items, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        if items.size == 0:
            return
        dmin, dmax = int(deltas.min()), int(deltas.max())
        max_abs = max(abs(dmin), abs(dmax))
        self._note_mass(max_abs * items.size)
        if self.table.dtype == object:
            scatter = deltas.astype(object)
            self.total += sum(deltas.tolist())
        else:
            self.total += int(deltas.sum(dtype=np.int64))
            if kernels.count_min_scatter(
                self.table, items, deltas, self._row_a, self._row_b,
                self.prime, unit_deltas=dmin == dmax == 1,
            ):
                kernels.record_dispatch("count_min_scatter", "native")
                return
            scatter = deltas if dmin != dmax else dmin
        kernels.record_dispatch("count_min_scatter", "numpy")
        for row, (a, b) in enumerate(self.row_params):
            # Division-free row hash; bit-identical to % prime % width.
            cells = linear_hash_rows(items, a, b, self.prime, self.width)
            kernels.scatter_add(self.table[row], cells, scatter)

    # -- merging (sharded engines) ----------------------------------------

    def _merge_key(self) -> tuple:
        return (
            self.universe_size,
            self.width,
            self.depth,
            self.prime,
            self.random.seed,
            tuple(self.row_params),
        )

    def _merge_state(self, other: "CountMinSketch") -> None:
        """Tables add cell-wise (the sketch is a linear map of ``f``)."""
        self._absorbed_mass += other._absorbed_mass
        self.table = add_tables_with_promotion(
            self.table, other.table, self._absorbed_mass
        )
        self.total += other.total

    def _snapshot_state(self) -> dict:
        return {
            "table": self.table,
            "total": self.total,
            "absorbed_mass": self._absorbed_mass,
        }

    def _restore_state(self, state) -> None:
        # The codec preserves dtype, so a promoted (object) table restores
        # promoted -- exact arithmetic survives the wire.
        self.table = state["table"]
        self.total = state["total"]
        self._absorbed_mass = state["absorbed_mass"]

    def estimate(self, item: int) -> int:
        """``min_r table[r][h_r(item)]`` -- an overestimate (insertions)."""
        return min(
            int(self.table[row, self._cell(row, item)]) for row in range(self.depth)
        )

    def estimate_batch(self, items) -> np.ndarray:
        """Vectorized ``min_r table[r][h_r(item)]`` over a probe array.

        Tiers mirror :meth:`process_batch`: the native fused
        hash+gather+row-min kernel when available, per-row
        ``linear_hash_rows`` + gather + running ``np.minimum`` in numpy
        otherwise -- both bit-identical to the scalar loop (int64 cells
        hold exact counts, and the hash paths are the pinned
        division-free reductions).  Promoted (object) tables,
        out-of-hash-domain probes, and beyond-int64 items fall back to
        the exact scalar loop.
        """
        try:
            probe = np.ascontiguousarray(items, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            kernels.record_dispatch("count_min_estimate", "scalar")
            return super().estimate_batch(items)
        if probe.size == 0:
            return np.empty(0, dtype=np.int64)
        if (
            not self._vectorizable
            or self.table.dtype == object
            or int(probe.min()) < 0
            or int(probe.max()) >= self.prime
        ):
            kernels.record_dispatch("count_min_estimate", "scalar")
            return super().estimate_batch(probe)
        fused = kernels.count_min_estimate(
            self.table, probe, self._row_a, self._row_b, self.prime
        )
        if fused is not None:
            kernels.record_dispatch("count_min_estimate", "native")
            return fused
        kernels.record_dispatch("count_min_estimate", "numpy")
        # Blocked so the per-row hash/gather scratch stays cache-resident
        # on huge probe sets (the native kernel blocks internally too).
        out = np.empty(probe.size, dtype=np.int64)
        block = 1 << 15
        for start in range(0, probe.size, block):
            piece = probe[start : start + block]
            acc: np.ndarray | None = None
            for row, (a, b) in enumerate(self.row_params):
                cells = linear_hash_rows(piece, a, b, self.prime, self.width)
                gathered = self.table[row].take(cells)
                acc = (
                    gathered
                    if acc is None
                    else np.minimum(acc, gathered, out=acc)
                )
            out[start : start + piece.size] = acc
        return out

    def query(self) -> dict[int, int]:
        """Estimates for all tracked cells are not enumerable; games query
        specific items via :meth:`estimate`.  The generic query returns the
        stream total (useful as a sanity answer)."""
        return {"total": self.total}

    def space_bits(self) -> int:
        cell_bits = bits_for_int(max(1, abs(self.total)))
        param_bits = 2 * self.depth * bits_for_universe(self.prime)
        return self.depth * self.width * cell_bits + param_bits

    def _state_fields(self) -> dict:
        # The table rides as a content fingerprint, not materialized
        # tuples: equal tables compare equal, mutations change it, and
        # per-round state snapshots stay O(depth * width) bytes hashed
        # instead of Python-tuple allocations (the full table remains
        # white-box readable as ``self.table``).
        return {
            "row_params": tuple(self.row_params),
            "prime": self.prime,
            "width": self.width,
            "table_digest": table_fingerprint(self.table),
        }
