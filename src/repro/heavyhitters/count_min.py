"""CountMin sketch -- an oblivious-model baseline and white-box attack target.

CountMin is correct in the oblivious model and (with output thresholding) in
parts of the black-box adversarial model, but its guarantees lean on the
hash functions being independent of the stream.  A white-box adversary reads
the hash coefficients straight out of the state view and floods a single
cell pattern, inflating a chosen victim item's estimate without ever
inserting it -- :mod:`repro.adversaries.sketch_attack` does exactly this.
Pairwise-independent hashing is implemented honestly (random linear maps
over a prime field) so the oblivious guarantees hold in experiments.
"""

from __future__ import annotations

from repro.core.algorithm import StreamAlgorithm
from repro.core.space import bits_for_int, bits_for_universe
from repro.core.stream import Update
from repro.crypto.modmath import next_prime

__all__ = ["CountMinSketch"]


class CountMinSketch(StreamAlgorithm):
    """Standard depth x width CountMin with pairwise-independent rows."""

    name = "count-min"

    def __init__(
        self, universe_size: int, width: int, depth: int, seed: int = 0
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.width = width
        self.depth = depth
        self.prime = next_prime(max(universe_size, width) + 1)
        # h_r(x) = (a_r x + b_r mod prime) mod width  -- drawn via the
        # witnessed source: the white-box adversary sees a_r, b_r.
        self.row_params = [
            (self.random.randint(1, self.prime - 1), self.random.randint(0, self.prime - 1))
            for _ in range(depth)
        ]
        self.table = [[0] * width for _ in range(depth)]
        self.total = 0

    def _cell(self, row: int, item: int) -> int:
        a, b = self.row_params[row]
        return ((a * item + b) % self.prime) % self.width

    def process(self, update: Update) -> None:
        self.total += update.delta
        for row in range(self.depth):
            self.table[row][self._cell(row, update.item)] += update.delta

    def estimate(self, item: int) -> int:
        """``min_r table[r][h_r(item)]`` -- an overestimate (insertions)."""
        return min(self.table[row][self._cell(row, item)] for row in range(self.depth))

    def query(self) -> dict[int, int]:
        """Estimates for all tracked cells are not enumerable; games query
        specific items via :meth:`estimate`.  The generic query returns the
        stream total (useful as a sanity answer)."""
        return {"total": self.total}

    def space_bits(self) -> int:
        cell_bits = bits_for_int(max(1, abs(self.total)))
        param_bits = 2 * self.depth * bits_for_universe(self.prime)
        return self.depth * self.width * cell_bits + param_bits

    def _state_fields(self) -> dict:
        return {
            "row_params": tuple(self.row_params),
            "prime": self.prime,
            "width": self.width,
            "table": tuple(tuple(row) for row in self.table),
        }
