"""The universe-partitioned sharded engine: N sketch replicas, one state.

Design
------
:class:`ShardedAlgorithm` wraps ``N`` replicas of one
:class:`~repro.core.algorithm.MergeableSketch` -- all built by a caller
factory from the *same* construction seed, so their hash functions / sign
vectors / SIS matrices coincide -- and routes every update to the shard
owning its item (:class:`~repro.parallel.partition.UniversePartitioner`).
Batches are partitioned with one vectorized hash and scattered with
order-preserving masks, so each shard consumes exactly the sub-stream of
its items, in stream order, through the same ``process_batch`` fast paths
a single engine would use.

Because the sketches are mergeable, the sum of the shard states *is* the
single-engine state: :meth:`ShardedAlgorithm.merged` clones shard 0 and
absorbs the rest, producing an instance whose tables, estimates,
``space_bits()`` and randomness transcript are bit-identical to one
replica fed the whole stream.  ``query``/``state_view``/``space_bits`` on
the wrapper answer from that merged view, which makes the wrapper a
drop-in :class:`~repro.core.algorithm.StreamAlgorithm`: the white-box game
(``StreamEngine.play``), adaptive adversaries reading per-round state
views, and every experiment driver see exactly the state they would
against a single engine.  Sharding changes *where* the work happens, never
what the adversary observes -- which is the point: the white-box model's
attacks work against sharded deployments too (experiment E11's
``--shards`` path demonstrates it).

:class:`ShardedStreamEngine` packages the wrapper with a
:class:`~repro.core.engine.StreamEngine` whose default chunk grows with the
shard count (each shard then scatters near-default-sized sub-chunks).
Three scatter backends share the routing/merge machinery:

* ``backend="serial"`` -- one process, one thread (the default);
* ``backend="thread"`` -- per-shard scatters on a thread pool; the numpy
  kernels release the GIL, so multi-core hosts overlap the array-bound
  work (the PR-2 ``parallel=True`` spelling is deprecated; it still
  selects this backend but emits a :class:`DeprecationWarning`);
* ``backend="process"`` -- per-shard worker *processes*
  (:class:`repro.distributed.workers.ProcessShardPool`): chunk data
  travels through shared memory, fan-in travels as wire-format snapshots
  (:mod:`repro.distributed.codec`), and the Python-bound sketches (AMS
  sign evaluation, exact dicts, KMV heaps) parallelize past the GIL.
  The merged state stays bit-identical to the single-engine state -- the
  fan-in path *is* the multi-host merge protocol, run over localhost.
"""

from __future__ import annotations

import copy
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

import numpy as np

from repro.core.algorithm import MergeableSketch, StateView, StreamAlgorithm
from repro.core.engine import DEFAULT_CHUNK_SIZE, StreamEngine
from repro.core.game import GameResult, GroundTruth, Validator
from repro.core.adversary import WhiteBoxAdversary
from repro.core.stream import Update
from repro.obs import get_registry as _get_obs_registry
from repro.obs.monitors import SHARD_UPDATES_METRIC
from repro.parallel.partition import UniversePartitioner

__all__ = ["ShardedAlgorithm", "ShardedStreamEngine"]

_BACKENDS = ("serial", "thread", "process")

_obs_registry = _get_obs_registry()
# Routed-update counts per shard, counted parent-side *after* the
# partition split -- process-backend workers therefore never touch this
# series and the fleet merge cannot double-count.  The skew monitor
# (repro.obs.monitors.ShardSkewMonitor) diffs these series to detect an
# adversary aiming its stream at one shard.
_obs_shard_updates = _obs_registry.counter(
    SHARD_UPDATES_METRIC,
    "Updates routed to each shard by the universe partitioner",
)


def _resolve_backend(parallel: Optional[bool], backend: Optional[str]) -> str:
    """Resolve the scatter backend, warning on the deprecated alias.

    ``parallel=`` was the PR-2 spelling for "scatter on threads"; the
    backend triple replaced it in PR 3.  Passing it (with either value)
    now emits a :class:`DeprecationWarning`; an explicit ``backend=``
    always wins, silently, so migrated callers never warn.
    """
    if backend is None and parallel is not None:
        warnings.warn(
            "the parallel= flag is deprecated; pass backend='thread' "
            "(parallel=True) or backend='serial' (parallel=False) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        backend = "thread" if parallel else "serial"
    if backend is None:
        backend = "serial"
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    return backend


class ShardedAlgorithm(StreamAlgorithm):
    """N mergeable replicas behind the single-algorithm interface.

    Parameters
    ----------
    factory:
        Zero-argument callable returning one replica.  It must return
        identically-constructed instances (same parameters, same seed) on
        every call; this is verified via the sketches' merge keys.
    num_shards:
        Number of replicas / universe parts.
    partitioner:
        Item -> shard map; defaults to a seed-0
        :class:`UniversePartitioner`.
    parallel:
        Deprecated alias for ``backend`` (``True`` -> ``"thread"``,
        ``False`` -> ``"serial"``); passing it emits a
        :class:`DeprecationWarning`.
    backend:
        ``"serial"`` (default), ``"thread"``, or ``"process"`` (see the
        module docstring).
    supervise:
        Process backend only: heal dead workers in place (respawn +
        baseline restore + journal replay, bit-exact) instead of failing
        the run.  See :class:`~repro.distributed.workers.ProcessShardPool`.
    snapshot_every:
        Per-shard baseline snapshot cadence (journaled feeds) under
        supervision; ``None`` keeps the pool default.
    """

    def __init__(
        self,
        factory: Callable[[], StreamAlgorithm],
        num_shards: int,
        partitioner: Optional[UniversePartitioner] = None,
        parallel: Optional[bool] = None,
        backend: Optional[str] = None,
        supervise: bool = False,
        snapshot_every: Optional[int] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        backend = _resolve_backend(parallel, backend)
        super().__init__(seed=0)
        self.shards: list[StreamAlgorithm] = [factory() for _ in range(num_shards)]
        first = self.shards[0]
        if not isinstance(first, MergeableSketch):
            raise TypeError(
                f"{type(first).__name__} is not a MergeableSketch; only "
                "mergeable sketches can be sharded"
            )
        for shard in self.shards[1:]:
            # Raises early (TypeError/ValueError) if the factory is not
            # deterministic -- e.g. it forgot to pin the seed.
            first._check_mergeable(shard)
        self.num_shards = num_shards
        self.backend = backend
        self.partitioner = partitioner or UniversePartitioner(num_shards)
        self.name = f"sharded-{first.name}-x{num_shards}"
        self._executor = (
            ThreadPoolExecutor(
                max_workers=num_shards, thread_name_prefix="shard"
            )
            if backend == "thread" and num_shards > 1
            else None
        )
        if backend == "process":
            from repro.distributed.workers import (
                DEFAULT_SNAPSHOT_EVERY,
                ProcessShardPool,
            )

            # Workers inherit the replicas at fork; the parent's copies
            # stay empty and serve as fan-in templates for merged().
            self._pool = ProcessShardPool(
                self.shards,
                supervise=supervise,
                snapshot_every=(
                    DEFAULT_SNAPSHOT_EVERY
                    if snapshot_every is None
                    else snapshot_every
                ),
            )
        else:
            self._pool = None
        self._merged_cache: Optional[StreamAlgorithm] = None
        self._shard_counters = [
            _obs_shard_updates.bind(shard=str(index))
            for index in range(num_shards)
        ]

    def _live_pool(self):
        """The worker pool, or ``None`` for in-process backends.

        A closed process-backend wrapper raises instead of silently
        falling through to the parent's never-fed template replicas --
        the worker state is gone, so any further routing or query would
        return wrong answers without an error.
        """
        if self.backend == "process" and self._pool is None:
            raise RuntimeError(
                "process-backend ShardedAlgorithm is closed; its worker "
                "state is gone (resume from a checkpoint on a fresh fleet)"
            )
        return self._pool

    # -- routing -----------------------------------------------------------

    def process(self, update: Update) -> None:
        """Route one update to the shard owning its item."""
        pool = self._live_pool()
        self._merged_cache = None
        shard = self.partitioner.assign(update.item)
        if _obs_registry.enabled:
            with _obs_registry.lock:
                self._shard_counters[shard].add_unlocked(1)
        if pool is not None:
            pool.feed_updates(shard, [(update.item, update.delta)])
        else:
            self.shards[shard].feed(update)

    def process_batch(self, items, deltas) -> None:
        """Partition a chunk with one vectorized hash; scatter per shard.

        ``UniversePartitioner.split`` groups each shard's updates into one
        contiguous slice while preserving stream order -- with
        commutative/mergeable update rules that makes the merged final
        state independent of the interleaving.
        """
        pool = self._live_pool()
        self._merged_cache = None
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if items.size == 0:
            return
        parts = self.partitioner.split(items, deltas)
        if _obs_registry.enabled:
            with _obs_registry.lock:
                for index, part in enumerate(parts):
                    if part is not None:
                        self._shard_counters[index].add_unlocked(
                            len(part[0])
                        )
        if pool is not None:
            pool.scatter(parts)
        elif self._executor is not None:
            futures = [
                self._executor.submit(shard.feed_batch, part[0], part[1])
                for shard, part in zip(self.shards, parts)
                if part is not None
            ]
            for future in futures:
                future.result()
        else:
            for shard, part in zip(self.shards, parts):
                if part is not None:
                    shard.feed_batch(part[0], part[1])

    # -- the merged single-engine view --------------------------------------

    def merged(self) -> StreamAlgorithm:
        """A full sketch equal to one instance fed the whole stream.

        Clones shard 0 (whose construction randomness every replica
        shares) and absorbs the remaining shards.  The process backend
        fans worker state in as wire-format snapshots -- ``restore`` for
        the first, fingerprint-verified ``merge_snapshot`` for the rest
        -- which is bit-identical to the in-process merge.  The result is
        cached until the next update; game loops that query every round
        pay one merge per round, exactly the coarseness the white-box
        model demands.
        """
        pool = self._live_pool()
        if self._merged_cache is None:
            clone = copy.deepcopy(self.shards[0])
            if pool is not None:
                snapshots = pool.snapshots()
                clone.restore(snapshots[0])
                if len(snapshots) > 1:
                    # One construction twin, restored per snapshot: cheaper
                    # than merge_snapshot's per-call deepcopy of the
                    # accumulated clone state, and byte-identical (restore
                    # replaces the twin's state wholesale each time).
                    twin = copy.deepcopy(self.shards[0])
                    for snapshot in snapshots[1:]:
                        twin.restore(snapshot)
                        clone.merge(twin)
            else:
                clone.merge_batch(self.shards[1:])
            self._merged_cache = clone
        return self._merged_cache

    def load_snapshot(self, data: bytes) -> None:
        """Load a wire-format snapshot into the fleet (checkpoint resume).

        The snapshot -- typically a checkpointed *merged* state -- lands
        in shard 0 whole; because merging is exact, a fleet holding the
        merged state in one shard and nothing in the others continues
        exactly like the uninterrupted deployment.  Intended for freshly
        constructed fleets; shard 0's previous state is replaced.
        """
        pool = self._live_pool()
        self._merged_cache = None
        if pool is not None:
            pool.restore(0, data)
        else:
            self.shards[0].restore(data)
        self.updates_processed = sum(self.shard_loads())

    def merge_snapshot(self, data: bytes) -> None:
        """Merge a wire-format snapshot into the fleet, keeping state.

        The additive sibling of :meth:`load_snapshot`: the snapshot is
        fingerprint-verified and *folded into* shard 0 instead of
        replacing it, so a server can absorb a dead peer's shards while
        its own keep counting (the coordinator's cross-server migration
        path).  Exactness is the merge property itself: fold order
        never changes the final state.
        """
        pool = self._live_pool()
        self._merged_cache = None
        if pool is not None:
            twin = copy.deepcopy(self.shards[0])
            twin.restore(pool.snapshots()[0])
            twin.merge_snapshot(data)
            pool.restore(0, twin.snapshot())
        else:
            self.shards[0].merge_snapshot(data)
        self.updates_processed = sum(self.shard_loads())

    def query(self):
        return self.merged().query()

    def estimate_batch(self, items) -> np.ndarray:
        """Batched point estimates answered by the merged view.

        One fan-in (cached until the next update), then the underlying
        sketch's vectorized ``estimate_batch`` -- so games over fleets
        batch their probes exactly like single-engine games, with
        bit/float-identical answers.
        """
        return self.merged().estimate_batch(items)

    def state_view(self) -> StateView:
        """The merged white-box view: what a single engine would expose.

        The transcript is shard 0's, which equals every other shard's (one
        shared seed, no processing-time draws) and therefore the single
        engine's.
        """
        return self.merged().state_view()

    def space_bits(self) -> int:
        """Space of the merged state -- the single-engine accounting."""
        return self.merged().space_bits()

    def physical_space_bits(self) -> int:
        """What the deployment actually holds: every replica's state."""
        pool = self._live_pool()
        if pool is None:
            return sum(shard.space_bits() for shard in self.shards)
        twin = copy.deepcopy(self.shards[0])
        return sum(
            twin.restore(snapshot).space_bits() for snapshot in pool.snapshots()
        )

    def shard_loads(self) -> list[int]:
        """Updates routed to each shard so far (load-balance diagnostics)."""
        pool = self._live_pool()
        if pool is not None:
            return pool.shard_loads()
        return [shard.updates_processed for shard in self.shards]

    def health(self) -> dict:
        """Fleet liveness summary (the gateway's readiness input).

        Pipe-free by design: checks worker *process* liveness without a
        round-trip, so health probes never queue behind a scatter in
        flight.  In-process backends are alive as long as this object
        is; a closed process backend reports unhealthy instead of
        raising (probes must degrade, not error).
        """
        if self.backend == "process" and self._pool is None:
            return {
                "ok": False,
                "backend": self.backend,
                "num_shards": self.num_shards,
                "workers_alive": [False] * self.num_shards,
                "restarts": 0,
                "recovering": False,
                "supervised": False,
                "closed": True,
            }
        pool = self._pool
        alive = (
            pool.workers_alive()
            if pool is not None
            else [True] * self.num_shards
        )
        recovering = pool.recovering() if pool is not None else False
        supervised = bool(pool.supervise) if pool is not None else False
        # A dead worker under supervision is a *recovering* fleet, not a
        # failed one: the next synchronization point respawns it.  Not-ok
        # either way -- readiness flips until the rebuild completes.
        return {
            "ok": all(alive) and not recovering,
            "backend": self.backend,
            "num_shards": self.num_shards,
            "workers_alive": alive,
            "restarts": sum(pool.restarts) if pool is not None else 0,
            "recovering": recovering or (supervised and not all(alive)),
            "supervised": supervised,
            "closed": False,
        }

    def metrics_snapshot(self) -> dict:
        """The fleet's merged obs-registry snapshot.

        In-process backends share the parent's process-wide registry, so
        its snapshot already covers every shard.  The process backend
        merges the parent's snapshot with every worker's
        (:meth:`ProcessShardPool.metric_snapshots`) through the same
        commutative fan-in the sketches use -- counters like
        ``repro_sketch_updates_total`` come out bit-identical to the
        serial backend's.
        """
        from repro.obs import get_registry, merge_snapshots

        parent = get_registry().snapshot()
        pool = self._live_pool()
        if pool is None:
            return parent
        return merge_snapshots([parent, *pool.metric_snapshots()])

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial wrappers)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __getattr__(self, attribute: str):
        """Estimator conveniences (``estimate``, heavy-hitter helpers,
        ``f2_estimate``, ...) resolve against the merged view, so sharded
        wrappers answer the same call surface as the sketch they wrap.
        The returned attribute binds the *current* merged snapshot -- fetch
        it again after further updates rather than holding it."""
        if attribute.startswith("_") or attribute in ("shards", "merged"):
            raise AttributeError(attribute)
        return getattr(self.merged(), attribute)


class ShardedStreamEngine:
    """Drives streams through a :class:`ShardedAlgorithm`.

    The front door of the sharded subsystem: builds the wrapper, sizes the
    chunking so each shard scatters near-default batches, and mirrors the
    :class:`~repro.core.engine.StreamEngine` driving surface (``drive``,
    ``drive_arrays``, ``play``).

    Parameters
    ----------
    factory:
        Zero-argument callable returning one identically-seeded replica.
    num_shards:
        Number of shard workers.
    chunk_size:
        Updates per partition round; defaults to
        ``DEFAULT_CHUNK_SIZE * num_shards`` so per-shard sub-chunks stay
        near the single-engine sweet spot.
    parallel:
        Deprecated alias for ``backend`` (``True`` -> ``"thread"``,
        ``False`` -> ``"serial"``); emits a :class:`DeprecationWarning`.
    backend:
        ``"serial"`` / ``"thread"`` / ``"process"`` scatter backend (see
        :class:`ShardedAlgorithm`).
    supervise / snapshot_every:
        Process-backend worker supervision knobs (see
        :class:`ShardedAlgorithm`).
    """

    def __init__(
        self,
        factory: Callable[[], StreamAlgorithm],
        num_shards: int,
        chunk_size: Optional[int] = None,
        partitioner: Optional[UniversePartitioner] = None,
        parallel: Optional[bool] = None,
        backend: Optional[str] = None,
        supervise: bool = False,
        snapshot_every: Optional[int] = None,
    ) -> None:
        # Resolve the deprecated alias here (one warning, pointing at the
        # caller) rather than letting it tunnel through ShardedAlgorithm.
        backend = _resolve_backend(parallel, backend)
        self.algorithm = ShardedAlgorithm(
            factory,
            num_shards,
            partitioner=partitioner,
            backend=backend,
            supervise=supervise,
            snapshot_every=snapshot_every,
        )
        self.engine = StreamEngine(
            chunk_size=chunk_size
            if chunk_size is not None
            else DEFAULT_CHUNK_SIZE * num_shards
        )

    @property
    def num_shards(self) -> int:
        return self.algorithm.num_shards

    @property
    def backend(self) -> str:
        return self.algorithm.backend

    def load_snapshot(self, data: bytes) -> None:
        """Load a wire-format snapshot (see :meth:`ShardedAlgorithm.load_snapshot`)."""
        self.algorithm.load_snapshot(data)

    def merge_snapshot(self, data: bytes) -> None:
        """Fold a wire-format snapshot in (see :meth:`ShardedAlgorithm.merge_snapshot`)."""
        self.algorithm.merge_snapshot(data)

    def drive(self, updates, on_chunk=None, **checkpoint_kwargs) -> ShardedAlgorithm:
        """Feed an update iterable through the partition/scatter pipeline.

        Accepts ``StreamEngine.drive``'s full keyword surface, including
        the ``checkpoint_path`` / ``checkpoint_every`` / ``start_position``
        parameters (sharded engines checkpoint their merged state).
        """
        self.engine.drive(
            self.algorithm, updates, on_chunk=on_chunk, **checkpoint_kwargs
        )
        return self.algorithm

    def drive_arrays(self, items, deltas, on_chunk=None, **checkpoint_kwargs) -> ShardedAlgorithm:
        """Array-native fast path (mirrors ``StreamEngine.drive_arrays``)."""
        self.engine.drive_arrays(
            self.algorithm, items, deltas, on_chunk=on_chunk, **checkpoint_kwargs
        )
        return self.algorithm

    def play(
        self,
        adversary: WhiteBoxAdversary,
        ground_truth: GroundTruth,
        validator: Validator,
        max_rounds: int,
        **kwargs,
    ) -> GameResult:
        """The white-box game against the *merged* state.

        Adaptive adversaries degrade to the per-round loop and observe a
        merged state view after every update -- the same view a single
        engine would hand them.
        """
        return self.engine.play(
            self.algorithm, adversary, ground_truth, validator, max_rounds, **kwargs
        )

    def merged(self) -> StreamAlgorithm:
        """The bit-exact single-engine-equivalent sketch (shard fan-in)."""
        return self.algorithm.merged()

    def query(self):
        """Answer the game's query from the merged state."""
        return self.algorithm.query()

    def estimate_batch(self, items) -> np.ndarray:
        """Batched point estimates from the merged state (one fan-in)."""
        return self.algorithm.estimate_batch(items)

    def state_view(self) -> StateView:
        """The merged white-box state view (see :class:`ShardedAlgorithm`)."""
        return self.algorithm.state_view()

    def metrics_snapshot(self) -> dict:
        """The fleet-merged obs snapshot (see :class:`ShardedAlgorithm`)."""
        return self.algorithm.metrics_snapshot()

    def health(self) -> dict:
        """Fleet liveness summary (see :meth:`ShardedAlgorithm.health`)."""
        return self.algorithm.health()

    def close(self) -> None:
        """Shut down the shard worker pool (no-op for serial engines)."""
        self.algorithm.close()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
