"""Sharded / asynchronous scaling layer over the batched stream engine.

Three pieces, designed to compose:

* :mod:`repro.parallel.partition` -- the deterministic vectorized
  item -> shard hash every path (batched, per-update, beyond-int64) agrees
  on;
* :mod:`repro.parallel.sharded` -- :class:`ShardedAlgorithm` (N mergeable
  replicas behind the single-algorithm interface, answering queries and
  white-box state views from the bit-exact merged state) and
  :class:`ShardedStreamEngine` (the driving surface);
* :mod:`repro.parallel.ingest` -- the asyncio front-end that overlaps
  chunk production with scatter (optionally checkpointing to disk via
  ``checkpoint_path=``; see :mod:`repro.distributed.checkpoint`).

The underlying merge protocol is
:class:`repro.core.algorithm.MergeableSketch`, implemented by CountMin,
CountSketch, AMS, exact F_p/L0, KMV, and SIS-L0.  The sharded engine's
``backend="process"`` mode and the wire-format snapshot fan-in behind it
live in :mod:`repro.distributed`.
"""

from repro.parallel.ingest import (
    IngestStats,
    chunk_arrays,
    chunk_updates,
    ingest,
    ingest_async,
)
from repro.parallel.partition import UniversePartitioner
from repro.parallel.sharded import ShardedAlgorithm, ShardedStreamEngine

__all__ = [
    "IngestStats",
    "ShardedAlgorithm",
    "ShardedStreamEngine",
    "UniversePartitioner",
    "chunk_arrays",
    "chunk_updates",
    "ingest",
    "ingest_async",
]
