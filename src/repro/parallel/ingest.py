"""Asyncio ingestion front-end: overlap chunk production with scatter.

Network-style workloads (see ``examples/network_monitoring.py``) produce
update chunks from a live source -- a packet ring, a socket, a Python
generator -- while the engine scatters the previous chunk into the
sketches.  Serially those two phases alternate; this module pipelines them
with a bounded :class:`asyncio.Queue` between a producer (pulling chunks
from a sync or async source) and a consumer (calling ``feed_batch``), each
running on its own single-thread executor so generator-side Python work and
GIL-releasing numpy scatter genuinely overlap on multi-core hosts.

The pipeline preserves stream order end to end: one producer, one consumer,
a FIFO queue.  Targets therefore end in exactly the state the synchronous
``StreamEngine.drive_arrays`` path produces -- the ingest tests assert that
bit-for-bit -- and any :class:`~repro.core.algorithm.StreamAlgorithm`
works, including :class:`~repro.parallel.sharded.ShardedAlgorithm` (whose
scatter then fans out a second time, across shards).

Checkpointed ingestion (:mod:`repro.distributed.checkpoint`): pass
``checkpoint_path`` and the consumer snapshots the (first) target to disk
every ``checkpoint_every`` updates, at chunk boundaries, plus once at
stream end.  A killed run resumes with ``resume_from`` + ``tail_chunks``
and replays only the unabsorbed tail -- the kill-and-resume tests verify
the resumed state is bit-identical to an uninterrupted run.

Signatures follow the :class:`~repro.core.engine.StreamEngine` driving
conventions (the ``repro.api`` facade re-exports both): ``(targets,
source)`` positionally -- where ``source`` may also be one ``(items,
deltas)`` array pair, chunked by ``chunk_size`` exactly like
``drive_arrays`` -- then keyword-only tuning, an ``on_chunk(position)``
callback with ``drive``'s semantics, and the same checkpoint parameter
names (``checkpoint_path`` / ``checkpoint_every`` / ``start_position``)
``StreamEngine.drive`` accepts.  Both entry points always return
:class:`IngestStats`.  The pre-unification positional ``queue_depth``
spelling still works but emits a :class:`DeprecationWarning`.

Usage::

    stats = ingest(sketch, (items, deltas), chunk_size=8192)
    # equivalently, with an explicit chunk source:
    stats = ingest(sketch, chunk_arrays(items, deltas, 8192))
    # or, inside an event loop:
    stats = await ingest_async(sketch, source)

    # crash-safe: checkpoint every 2^16 updates, resume after a kill
    stats = ingest(sketch, source, checkpoint_path="run.ckpt")
    position = resume_from("run.ckpt", fresh_sketch)
    ingest(fresh_sketch, tail_chunks(source_again, position),
           checkpoint_path="run.ckpt", start_position=position)
"""

from __future__ import annotations

import asyncio
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterable, Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.algorithm import StreamAlgorithm
from repro.core.engine import DEFAULT_CHUNK_SIZE
from repro.core.stream import Update, updates_to_arrays
from repro.obs import get_registry as _get_obs_registry

__all__ = [
    "IngestStats",
    "chunk_arrays",
    "chunk_updates",
    "ingest",
    "ingest_async",
]

_obs_registry = _get_obs_registry()
_obs_ingest_chunks = _obs_registry.counter(
    "repro_ingest_chunks_total", "Chunks scattered by ingestion pipelines"
)
_obs_ingest_updates = _obs_registry.counter(
    "repro_ingest_updates_total", "Updates scattered by ingestion pipelines"
)
_obs_ingest_checkpoints = _obs_registry.counter(
    "repro_ingest_checkpoints_total",
    "Checkpoints written by ingestion pipelines",
)

#: One (items, deltas) array pair.
Chunk = tuple[np.ndarray, np.ndarray]
ChunkSource = Union[Iterable[Chunk], AsyncIterable[Chunk]]

_SENTINEL = object()


@dataclass
class IngestStats:
    """What one ingestion run did (throughput bookkeeping for benchmarks).

    The fields remain the per-run view callers read; :meth:`bump` is the
    sanctioned mutation path and *mirrors* each increment into the
    process-wide obs registry (``repro_ingest_{chunks,updates,
    checkpoints}_total``), so concurrent runs keep exact per-run numbers
    while the merged exposition shows process totals.
    """

    chunks: int = 0
    updates: int = 0
    seconds: float = 0.0
    #: Time the consumer spent inside ``feed_batch`` (scatter-bound share).
    scatter_seconds: float = 0.0
    queue_depth: int = 0
    targets: int = field(default=1)
    #: Checkpoints written during this run (0 when checkpointing is off).
    checkpoints: int = 0
    #: Absolute stream position after the run (includes ``start_position``).
    position: int = 0

    @property
    def updates_per_second(self) -> float:
        return self.updates / self.seconds if self.seconds > 0 else 0.0

    def bump(
        self,
        *,
        chunks: int = 0,
        updates: int = 0,
        checkpoints: int = 0,
        scatter_seconds: float = 0.0,
        position: int = 0,
    ) -> None:
        """Advance the per-run counts and mirror them into the registry."""
        self.chunks += chunks
        self.updates += updates
        self.checkpoints += checkpoints
        self.scatter_seconds += scatter_seconds
        self.position += position
        if _obs_registry.enabled:
            if chunks:
                _obs_ingest_chunks.add(chunks)
            if updates:
                _obs_ingest_updates.add(updates)
            if checkpoints:
                _obs_ingest_checkpoints.add(checkpoints)


def chunk_arrays(items, deltas, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Chunk]:
    """Slice one big array pair into engine-sized chunks."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    items = np.asarray(items, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.int64)
    if len(items) != len(deltas):
        raise ValueError(
            f"items/deltas length mismatch: {len(items)} != {len(deltas)}"
        )
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size], deltas[start : start + chunk_size]


def chunk_updates(
    updates: Iterable[Update], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Chunk]:
    """Batch an :class:`Update` iterable into array chunks."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    pending: list[Update] = []
    for update in updates:
        pending.append(update)
        if len(pending) >= chunk_size:
            yield updates_to_arrays(pending)
            pending = []
    if pending:
        yield updates_to_arrays(pending)


def _legacy_queue_depth(args: tuple, queue_depth: int, name: str) -> int:
    """Shim for the pre-unification positional ``queue_depth`` spelling."""
    if not args:
        return queue_depth
    if len(args) > 1:
        raise TypeError(
            f"{name}() takes 2 positional arguments (targets, source); "
            "chunking/checkpoint options are keyword-only"
        )
    warnings.warn(
        f"passing queue_depth positionally to {name}() is deprecated; "
        "use the keyword queue_depth=",
        DeprecationWarning,
        stacklevel=3,
    )
    return args[0]


def _as_chunk_source(source, chunk_size: Optional[int]) -> ChunkSource:
    """Normalize ``source``: one array pair becomes engine-sized chunks.

    Mirrors ``StreamEngine.drive_arrays``: a ``(items, deltas)`` pair of
    equal-length array-likes is sliced into ``chunk_size`` chunks (the
    engine default when unset).  Anything else must already be a sync or
    async iterable of chunks, for which ``chunk_size`` has no meaning --
    passing it there is an error, not a silent no-op.
    """
    is_pair = (
        isinstance(source, tuple)
        and len(source) == 2
        and all(hasattr(part, "__len__") for part in source)
        and not isinstance(source[0], tuple)
    )
    if is_pair:
        return chunk_arrays(
            source[0], source[1], chunk_size or DEFAULT_CHUNK_SIZE
        )
    if chunk_size is not None:
        raise ValueError(
            "chunk_size only applies when source is one (items, deltas) "
            "array pair; this source already yields chunks"
        )
    return source


async def ingest_async(
    targets,
    source: ChunkSource,
    *args,
    chunk_size: Optional[int] = None,
    on_chunk: Optional[Callable[[int], None]] = None,
    queue_depth: int = 4,
    checkpoint_path=None,
    checkpoint_every: Optional[int] = None,
    start_position: int = 0,
) -> IngestStats:
    """Pipelined ingestion: produce chunk ``t+1`` while scattering chunk ``t``.

    Parameters
    ----------
    targets:
        One :class:`StreamAlgorithm` or a lockstep sequence (every target
        sees every chunk, in order, like ``StreamEngine.drive``).
    source:
        Sync or async iterable of ``(items, deltas)`` chunks, or one
        ``(items, deltas)`` array pair (chunked like ``drive_arrays``).
    chunk_size:
        Chunk size used when ``source`` is one array pair (defaults to
        the engine's ``DEFAULT_CHUNK_SIZE``; an error for pre-chunked
        sources).
    on_chunk:
        ``on_chunk(position)`` fires after each chunk's scatter completes
        -- ``StreamEngine.drive``'s hook, with absolute positions
        (``start_position`` included) when resuming.
    queue_depth:
        Bound on produced-but-unscattered chunks (backpressure).
    checkpoint_path:
        When given, the first target is snapshotted here every
        ``checkpoint_every`` updates (at chunk boundaries) and at stream
        end; see :mod:`repro.distributed.checkpoint`.
    checkpoint_every:
        Checkpoint cadence in updates (defaults to the checkpoint
        module's cadence).
    start_position:
        Absolute position of the first incoming update -- nonzero when
        resuming, so recorded checkpoint positions stay absolute.

    Returns
    -------
    IngestStats
        Always -- throughput, scatter share, checkpoint count, position.
    """
    queue_depth = _legacy_queue_depth(args, queue_depth, "ingest_async")
    source = _as_chunk_source(source, chunk_size)
    if queue_depth <= 0:
        raise ValueError(f"queue_depth must be positive, got {queue_depth}")
    if start_position < 0:
        raise ValueError(
            f"start_position must be non-negative, got {start_position}"
        )
    single = isinstance(targets, StreamAlgorithm)
    target_list: Sequence[StreamAlgorithm] = [targets] if single else list(targets)
    writer = None
    if checkpoint_path is not None:
        from repro.distributed.checkpoint import (
            DEFAULT_CHECKPOINT_EVERY,
            CheckpointWriter,
        )

        writer = CheckpointWriter(
            checkpoint_path,
            target_list[0],
            every=checkpoint_every
            if checkpoint_every is not None
            else DEFAULT_CHECKPOINT_EVERY,
        )
        writer.last_position = start_position
    stats = IngestStats(
        queue_depth=queue_depth,
        targets=len(target_list),
        position=start_position,
    )
    queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
    loop = asyncio.get_running_loop()
    started = time.perf_counter()

    async def produce() -> None:
        # The sentinel must reach the consumer even when the source raises
        # mid-stream, or the pipeline would deadlock on queue.get(); the
        # source's exception then surfaces through `await producer`.
        try:
            if hasattr(source, "__aiter__"):
                async for chunk in source:
                    await queue.put(chunk)
            else:
                iterator = iter(source)
                with ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="ingest-produce"
                ) as pool:
                    while True:
                        chunk = await loop.run_in_executor(
                            pool, next, iterator, _SENTINEL
                        )
                        if chunk is _SENTINEL:
                            break
                        await queue.put(chunk)
        finally:
            await queue.put(_SENTINEL)

    async def consume() -> None:
        def scatter(chunk: Chunk) -> float:
            items, deltas = chunk
            scatter_started = time.perf_counter()
            for target in target_list:
                target.feed_batch(items, deltas)
            return time.perf_counter() - scatter_started

        with ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ingest-scatter"
        ) as pool:
            while True:
                chunk = await queue.get()
                if chunk is _SENTINEL:
                    return
                scatter_seconds = await loop.run_in_executor(
                    pool, scatter, chunk
                )
                stats.bump(
                    chunks=1,
                    updates=len(chunk[0]),
                    position=len(chunk[0]),
                    scatter_seconds=scatter_seconds,
                )
                if on_chunk is not None:
                    on_chunk(stats.position)
                # Chunk-boundary checkpointing: the scatter for this chunk
                # has completed, so the snapshot is a consistent prefix
                # state at an exactly-known position.
                if writer is not None and writer.maybe(stats.position):
                    stats.bump(checkpoints=1)

    producer = asyncio.ensure_future(produce())
    try:
        await consume()
        await producer
    finally:
        producer.cancel()
    if writer is not None and writer.last_position != stats.position:
        # Final checkpoint at stream end, so a clean finish is resumable
        # (and re-runnable) without replaying anything.
        writer.flush(stats.position)
        stats.bump(checkpoints=1)
    stats.seconds = time.perf_counter() - started
    return stats


def ingest(
    targets,
    source: ChunkSource,
    *args,
    chunk_size: Optional[int] = None,
    on_chunk: Optional[Callable[[int], None]] = None,
    queue_depth: int = 4,
    checkpoint_path=None,
    checkpoint_every: Optional[int] = None,
    start_position: int = 0,
) -> IngestStats:
    """Synchronous wrapper around :func:`ingest_async` (runs its own loop).

    Same signature and :class:`IngestStats` return as the async form.
    """
    queue_depth = _legacy_queue_depth(args, queue_depth, "ingest")
    return asyncio.run(
        ingest_async(
            targets,
            source,
            chunk_size=chunk_size,
            on_chunk=on_chunk,
            queue_depth=queue_depth,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            start_position=start_position,
        )
    )
