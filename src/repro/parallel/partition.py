"""Vectorized universe partitioning for the sharded stream engine.

The sharded engine splits the universe ``[n]`` across shards by *item*, not
by stream position: every update to item ``x`` is routed to shard
``h(x) mod N`` for a fixed hash ``h``, so each shard sees a sub-stream that
touches a fixed subset of the universe.  Because the mergeable sketches are
linear (or, like KMV, order-independent set maps), the merged shard states
equal one instance's state on the full stream regardless of how the
universe is cut -- the partition only controls load balance.

The hash is a multiplicative (Fibonacci) hash over 64-bit words: multiply
by an odd constant derived from the seed and keep high bits of the
product.  Power-of-two shard counts read their shard index straight from
the top bits (no modulo on the hot path); other counts reduce a high
window mod ``N``.  The hash is evaluated two ways that agree bit-for-bit:

* :meth:`UniversePartitioner.assign_array` -- numpy uint64 arithmetic
  (wraparound is the intended mod-2^64 semantics) for whole update chunks;
* :meth:`UniversePartitioner.assign` -- exact Python integers, used by the
  per-update game path and for beyond-int64 items, masked to 64 bits so it
  matches the vector path on the shared domain.

:meth:`UniversePartitioner.split` is the engine's scatter primitive: one
hash pass, an O(n) counting sort on the shard ids, and contiguous
per-shard array views in stream order.  Three tiers, all bit-identical:

* the **native kernel** (:func:`repro.core.kernels.partition_scatter`)
  fuses hash + count + cumsum + stable scatter into three C passes;
* small shard counts use **bincount + per-shard gathers** (each
  ``flatnonzero`` pass emits one shard's positions already in stream
  order -- the counting-sort scatter run shard-major instead of
  element-major);
* large shard counts fall back to a **stable argsort over a narrowed
  id dtype** (numpy's stable sort on <= 16-bit integers is an LSD radix
  sort, i.e. counting-sort passes), with bincount/cumsum bounds.

Every tier replaced the old stable argsort over 64-bit ids, which paid
an O(n log n) comparison sort per chunk.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels

__all__ = ["UniversePartitioner"]

#: Up to this many shards the counting-sort scatter runs shard-major
#: (one vectorized gather per shard); beyond it the radix-argsort tier
#: wins.  Crossover measured on the benchmark host.
_GATHER_TIER_MAX_SHARDS = 16

#: 2^64 / golden ratio, the classic Fibonacci-hashing multiplier.
_PHI64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1
#: For non-power-of-two shard counts: reduce this many top bits mod N
#: (plenty of entropy for any realistic N while staying in safe int range).
_WINDOW_SHIFT = 33


class UniversePartitioner:
    """Deterministic item -> shard assignment shared by all engine paths.

    Parameters
    ----------
    num_shards:
        ``N``; assignments land in ``[0, N)``.
    seed:
        Perturbs the multiplier so distinct engines cut the universe
        differently.  The multiplier stays odd (a bijection mod 2^64).
    """

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self.seed = seed
        # splitmix64-style seed stirring keeps multipliers well spread.
        stirred = (seed * 0xBF58476D1CE4E5B9 + 0x94D049BB133111EB) & _MASK64
        self.multiplier = (_PHI64 ^ stirred) | 1
        self._bits = num_shards.bit_length() - 1
        self._power_of_two = num_shards == (1 << self._bits)

    def assign(self, item: int) -> int:
        """Shard index of one item (exact Python arithmetic, any int size)."""
        if item < 0:
            raise ValueError(f"item must be non-negative, got {item}")
        mixed = ((item & _MASK64) * self.multiplier) & _MASK64
        if self._power_of_two:
            return mixed >> (64 - self._bits) if self._bits else 0
        return (mixed >> _WINDOW_SHIFT) % self.num_shards

    def assign_array(self, items: np.ndarray) -> np.ndarray:
        """Shard indices for an int64 item array (vectorized, wrap-exact)."""
        mixed = np.asarray(items).astype(np.uint64) * np.uint64(self.multiplier)
        if self._power_of_two:
            if not self._bits:
                return np.zeros(len(mixed), dtype=np.uint64)
            return mixed >> np.uint64(64 - self._bits)
        return (mixed >> np.uint64(_WINDOW_SHIFT)) % np.uint64(self.num_shards)

    def split(
        self, items: np.ndarray, deltas: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray] | None]:
        """Per-shard ``(items, deltas)`` pairs via an O(n) counting sort.

        Groups each shard's updates into one contiguous block while
        keeping them in stream order (the scatter is stable); empty
        shards get ``None``.  Returned arrays are views into the
        shard-grouped copies -- callers must not mutate them.  All three
        tiers (see the module docstring) produce identical views; the
        equivalence against the old stable-argsort formulation is pinned
        by ``tests/test_fused_scatter.py``.
        """
        if self.num_shards == 1:
            return [(items, deltas)]
        native = kernels.partition_scatter(
            items,
            deltas,
            self.multiplier,
            self._bits,
            _WINDOW_SHIFT,
            self.num_shards,
            self._power_of_two,
        )
        if native is not None:
            kernels.record_dispatch("partition_scatter", "native")
            sorted_items, sorted_deltas, counts = native
            parts: list[tuple[np.ndarray, np.ndarray] | None] = []
            low = 0
            for shard in range(self.num_shards):
                high = low + int(counts[shard])
                if high > low:
                    parts.append(
                        (sorted_items[low:high], sorted_deltas[low:high])
                    )
                else:
                    parts.append(None)
                low = high
            return parts
        ids = self.assign_array(items)
        if self.num_shards <= _GATHER_TIER_MAX_SHARDS:
            kernels.record_dispatch("partition_scatter", "gather")
            counts = np.bincount(
                ids.astype(np.int64), minlength=self.num_shards
            )
            parts = []
            for shard in range(self.num_shards):
                if counts[shard]:
                    positions = np.flatnonzero(ids == shard)
                    parts.append((items[positions], deltas[positions]))
                else:
                    parts.append(None)
            return parts
        # Radix tier: a stable sort over a narrowed id dtype is LSD
        # radix (counting-sort passes) inside numpy; bounds come from
        # bincount + cumsum rather than a binary search.
        kernels.record_dispatch("partition_scatter", "radix")
        narrow = ids.astype(np.uint16 if self.num_shards <= 65536 else np.int64)
        order = np.argsort(narrow, kind="stable")
        sorted_items = items[order]
        sorted_deltas = deltas[order]
        counts = np.bincount(ids.astype(np.int64), minlength=self.num_shards)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        parts = []
        for shard in range(self.num_shards):
            low, high = int(bounds[shard]), int(bounds[shard + 1])
            if high > low:
                parts.append((sorted_items[low:high], sorted_deltas[low:high]))
            else:
                parts.append(None)
        return parts

    def masks(self, items: np.ndarray) -> list[np.ndarray]:
        """Per-shard boolean masks over ``items`` (diagnostics/tests)."""
        ids = self.assign_array(items)
        return [ids == shard for shard in range(self.num_shards)]
