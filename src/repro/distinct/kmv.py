"""KMV (k-minimum-values) distinct-count estimator -- an oblivious baseline.

The classic bottom-k estimator: hash every item, keep the ``k`` smallest
hash values, estimate ``L0 ~ (k - 1) / max_kept``.  Excellent in the
oblivious model -- and *defenseless* in the white-box model, where the
adversary reads the hash parameters from the state view and feeds only
items that hash high (estimate collapses) or low (estimate explodes).
:mod:`repro.adversaries.distinct_attack` mounts both attacks; the contrast
with :class:`~repro.distinct.sis_l0.SisL0Estimator` is experiment E06/E11's
point: against white-box adversaries, distinct counting needs cryptography
(Theorem 1.5) or linear space (Theorem 1.9, p = 0).

Insertion-only (KMV does not support deletions -- one more reason the paper
reaches for SIS sketches on turnstile streams).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.algorithm import MergeableSketch, StreamAlgorithm
from repro.core.space import bits_for_universe
from repro.core.stream import INT64_HASH_BOUND, Update
from repro.crypto.modmath import next_prime

__all__ = ["KMVEstimator"]


class KMVEstimator(MergeableSketch, StreamAlgorithm):
    """Bottom-k distinct counting with a random linear hash."""

    name = "kmv"

    def __init__(self, universe_size: int, k: int = 64, seed: int = 0) -> None:
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.k = k
        self.prime = next_prime(universe_size * 4 + 7)
        # The white-box adversary sees (a, b) in the transcript/state.
        self.hash_a = self.random.randint(1, self.prime - 1)
        self.hash_b = self.random.randint(0, self.prime - 1)
        # max-heap (negated) of the k smallest hash values seen
        self._heap: list[int] = []
        self._members: set[int] = set()

    def hash_value(self, item: int) -> int:
        """The (public) linear hash of one item."""
        return (self.hash_a * item + self.hash_b) % self.prime

    def process(self, update: Update) -> None:
        if update.delta < 0:
            raise ValueError("KMV supports insertion-only streams")
        if update.delta == 0:
            return
        self._offer(self.hash_value(update.item))

    def _offer(self, value: int) -> None:
        """Insert one hash value into the bottom-k structure."""
        if value in self._members:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -value)
            self._members.add(value)
        elif value < -self._heap[0]:
            evicted = -heapq.heappushpop(self._heap, -value)
            self._members.discard(evicted)
            self._members.add(value)

    def process_batch(self, items, deltas) -> None:
        """Vectorized hashing; heap maintenance over unique hash values.

        The bottom-k set is order-independent (it is the k smallest distinct
        hash values seen), so offering the batch's unique hashes in sorted
        order yields the same final state as the per-update path.
        """
        if self.prime >= INT64_HASH_BOUND:
            super().process_batch(items, deltas)
            return
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if items.size == 0:
            return
        if int(deltas.min()) < 0:
            raise ValueError("KMV supports insertion-only streams")
        live = items[deltas > 0]
        if live.size == 0:
            return
        values = (self.hash_a * live + self.hash_b) % self.prime
        for value in np.unique(values).tolist():
            self._offer(value)

    # -- merging (sharded engines) ----------------------------------------

    def _merge_key(self) -> tuple:
        return (
            self.universe_size,
            self.k,
            self.prime,
            self.hash_a,
            self.hash_b,
            self.random.seed,
        )

    def _merge_state(self, other: "KMVEstimator") -> None:
        """Bottom-k union: offer the other replica's kept hash values.

        The bottom-k set is the k smallest *distinct* hash values seen by
        either replica -- order-independent, so offering the other side's
        members reproduces a single instance's state exactly.
        """
        for value in sorted(other._members):
            self._offer(value)

    def _snapshot_state(self) -> dict:
        # The bottom-k structure is fully determined by its member set; the
        # heap is just an access path and is rebuilt on restore.
        return {"kept": tuple(sorted(self._members))}

    def _restore_state(self, state) -> None:
        self._members = {int(v) for v in state["kept"]}
        self._heap = [-value for value in self._members]
        heapq.heapify(self._heap)

    def query(self) -> float:
        """The KMV estimate ``(k - 1) * prime / kth_min`` (or exact count
        while fewer than k distinct hashes have been seen)."""
        if len(self._heap) < self.k:
            return float(len(self._heap))
        kth = -self._heap[0]
        if kth == 0:
            return float(self.k)
        return (self.k - 1) * self.prime / kth

    def space_bits(self) -> int:
        value_bits = bits_for_universe(self.prime)
        return self.k * value_bits + 2 * value_bits

    def _state_fields(self) -> dict:
        return {
            "hash_a": self.hash_a,
            "hash_b": self.hash_b,
            "prime": self.prime,
            "kept": tuple(sorted(self._members)),
        }
