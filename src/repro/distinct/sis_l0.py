"""SIS-sketch L0 estimation on turnstile streams (Algorithm 5, Theorem 1.5).

The universe ``[n]`` is split into ``n^{1-eps}`` consecutive chunks of
``n^eps`` coordinates.  Every chunk keeps a sketch ``A f_chunk mod q`` where
``A in Z_q^{n^{c eps} x n^eps}`` is *one shared* SIS matrix (the paper is
explicit: "we use the same sketching matrix A on each chunk").  The answer
is the number of nonzero sketches ``z``, which satisfies

    z  <=  L0(f)  <=  z * n^eps

-- a multiplicative ``n^eps`` approximation -- *unless* the adversary placed
a nonzero chunk in the kernel of ``A``, i.e. produced a short integer
solution.  Under Assumption 2.17 a polynomial-time adversary cannot, and
that is the entire correctness argument (the proof of Theorem 1.5).

Works on turnstile streams (insertions and deletions): only the final
``||f||_inf <= poly(n)`` matters, signs do not.

Space: ``n^{1-eps}`` sketches of ``n^{c eps} log q`` bits each, plus the
matrix -- ``~O(n^{1-eps+c eps} + n^{(1+c) eps})`` in explicit mode; in
random-oracle mode the matrix term disappears (``~O(n^{1-eps+c eps})``),
exactly Theorem 1.5's two bounds.

Engineering note -- two storage modes, one observable state:

* **int64 dense mode** (``q^2 * n^eps < 2^63``, the
  :attr:`~repro.crypto.sis.SISMatrix.int64_compatible` regime): all chunk
  registers live in one ``(num_chunks, rows)`` int64 array and
  ``process_batch`` is a fully vectorized scatter -- one fused
  gather-multiply-accumulate pass through :mod:`repro.core.kernels` when
  the compiled tier is available, else a chunk/offset split with per-row
  gather-multiply ``np.add.at`` and one mod over the touched rows --
  roughly 10x the throughput of the exact path at benchmark scale.
* **exact mode** (paper-default ``q ~ n^3`` at large ``n``): a sparse dict
  of nonzero chunk registers updated through
  :meth:`~repro.crypto.sis.SISMatrix.accumulate_batch`, whose arithmetic
  stays exact (object dtype) at any modulus.

Both modes present identical observable state: :attr:`sketches` (the
nonzero chunk registers), queries, ``space_bits`` (which always charges
every reserved chunk register, as the paper's algorithm does), and the
randomness transcript.  The mode is decided by the parameters at
construction, never by the data.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core import kernels
from repro.core.algorithm import MergeableSketch, StreamAlgorithm
from repro.core.stream import Update, aggregate_batch
from repro.crypto.random_oracle import RandomOracle
from repro.crypto.sis import SISMatrix, SISParams, sis_parameters_for_l0

__all__ = ["SisL0Estimator"]


class SisL0Estimator(MergeableSketch, StreamAlgorithm):
    """Algorithm 5: ``n^eps``-approximate L0 against bounded adversaries.

    Parameters
    ----------
    universe_size:
        ``n``.
    eps:
        Chunk exponent; the approximation factor is ``n^eps``.
    c:
        Sketch-height exponent in ``(0, 1/2)`` (Theorem 1.5's ``c``).
    mode:
        ``"explicit"`` stores the SIS matrix; ``"oracle"`` derives entries
        from a random oracle (the paper's improved space bound).
    force_exact:
        Keep the exact sparse-dict representation even when the modulus
        admits the int64 dense path -- an ablation switch for benchmarks
        and equivalence tests (both representations expose identical
        observable state).
    """

    name = "sis-l0"

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.5,
        c: float = 0.25,
        mode: str = "explicit",
        seed: int = 0,
        params: Optional[SISParams] = None,
        force_exact: bool = False,
    ) -> None:
        if universe_size < 2:
            raise ValueError(f"universe_size must be >= 2, got {universe_size}")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.eps = eps
        self.c = c
        self.params = params or sis_parameters_for_l0(universe_size, eps, c)
        self.chunk_width = self.params.cols
        self.num_chunks = math.ceil(universe_size / self.chunk_width)
        oracle = RandomOracle(b"sis-l0|" + str(seed).encode()) if mode == "oracle" else None
        self.matrix = SISMatrix(self.params, mode=mode, seed=seed, oracle=oracle)
        #: Whether the dense int64 representation is active (parameter-
        #: determined; see the module docstring).
        self.int64_fast_path = self.matrix.int64_compatible and not force_exact
        if self.int64_fast_path:
            self._dense = np.zeros((self.num_chunks, self.params.rows), dtype=np.int64)
            self._cols64 = self.matrix.columns_int64()
            self._batch_limit = self.matrix.int64_batch_limit()
            self._sketches: Optional[dict[int, list[int]]] = None
        else:
            self._dense = None
            self._sketches = {}

    # -- streaming ---------------------------------------------------------

    def process(self, update: Update) -> None:
        if update.item >= self.universe_size:
            raise ValueError(
                f"item {update.item} outside universe [0, {self.universe_size})"
            )
        if update.delta == 0:
            return
        chunk, offset = divmod(update.item, self.chunk_width)
        if self.int64_fast_path:
            # delta mod q fits int64; products stay below q^2 < 2^63 / cols.
            reduced = update.delta % self.params.modulus
            self._dense[chunk] = (
                self._dense[chunk] + reduced * self._cols64[offset]
            ) % self.params.modulus
            return
        sketch = self._sketches.get(chunk)
        if sketch is None:
            sketch = self.matrix.zero_sketch()
            self._sketches[chunk] = sketch
        self.matrix.accumulate(sketch, offset, update.delta)
        if not any(sketch):
            del self._sketches[chunk]

    def process_batch(self, items, deltas) -> None:
        """Batch update: numpy chunk/offset split + per-chunk accumulation.

        Dense mode scatters the whole batch through the fused kernel
        layer (one mod-q gather-multiply-accumulate pass) or, on the
        numpy tier, with per-row ``np.add.at`` (splitting at the
        matrix's int64 accumulation limit, never binding in practice)
        followed by one reduction of the touched chunk rows mod q.  Exact
        mode aggregates per-coordinate deltas first (the sketch map is
        linear, so this is exact) and feeds each touched chunk's
        coordinates to :meth:`SISMatrix.accumulate_batch`; sketches that
        net out to zero are evicted once at the end of the batch.  Both
        paths end in the same state as the per-update loop.
        """
        if self.int64_fast_path:
            items = np.ascontiguousarray(items, dtype=np.int64)
            deltas = np.ascontiguousarray(deltas, dtype=np.int64)
            if items.size == 0:
                return
            if int(items.min()) < 0:
                raise ValueError("item must be non-negative")
            if int(items.max()) >= self.universe_size:
                raise ValueError(
                    f"item {int(items.max())} outside universe "
                    f"[0, {self.universe_size})"
                )
            q = self.params.modulus
            chunks = items // self.chunk_width
            offsets = items - chunks * self.chunk_width
            reduced = deltas % q  # numpy % matches Python %: residues in [0, q)
            if kernels.sis_dense_scatter(
                self._dense, chunks, offsets, reduced, self._cols64, q
            ):
                # The fused kernel reduces mod q at every accumulation, so
                # the registers it leaves behind equal the reference
                # path's end-of-batch ``%= q`` sweep bit for bit.
                return
            for start in range(0, items.size, self._batch_limit):
                sl = slice(start, start + self._batch_limit)
                part_chunks = chunks[sl]
                part_offsets = offsets[sl]
                part_deltas = reduced[sl]
                for row in range(self.params.rows):
                    np.add.at(
                        self._dense[:, row],
                        part_chunks,
                        part_deltas * self._cols64[part_offsets, row],
                    )
                touched = np.unique(part_chunks)
                self._dense[touched] %= q
            return
        unique, aggregated = aggregate_batch(items, deltas, self.universe_size)
        by_chunk: dict[int, tuple[list[int], list[int]]] = {}
        for item, delta in zip(unique, aggregated):
            if delta == 0:
                continue
            chunk, offset = divmod(item, self.chunk_width)
            offs, vals = by_chunk.setdefault(chunk, ([], []))
            offs.append(offset)
            vals.append(delta)
        for chunk, (offs, vals) in by_chunk.items():
            sketch = self._sketches.get(chunk)
            if sketch is None:
                sketch = self.matrix.zero_sketch()
                self._sketches[chunk] = sketch
            self.matrix.accumulate_batch(sketch, offs, vals)
            if not any(sketch):
                del self._sketches[chunk]

    # -- merging (sharded engines) -----------------------------------------

    def _merge_key(self) -> tuple:
        return (
            self.universe_size,
            (self.params.rows, self.params.cols, self.params.modulus, self.params.beta),
            self.matrix.mode,
            self.random.seed,
            # Same observable state either way, but the merge arithmetic is
            # representation-specific; replicas must agree.
            self.int64_fast_path,
        )

    def _merge_state(self, other: "SisL0Estimator") -> None:
        """Chunk registers add mod q (the chunk sketch map is linear)."""
        q = self.params.modulus
        if self.int64_fast_path:
            # Entries are < q on both sides; sums stay far below int64.
            self._dense = (self._dense + other._dense) % q
            return
        for chunk, vector in other._sketches.items():
            sketch = self._sketches.get(chunk)
            if sketch is None:
                self._sketches[chunk] = list(vector)
                continue
            for row in range(self.params.rows):
                sketch[row] = (sketch[row] + vector[row]) % q
            if not any(sketch):
                del self._sketches[chunk]

    def _snapshot_state(self) -> dict:
        """Chunk registers in whichever representation is active.

        The merge key (and therefore the snapshot fingerprint) pins the
        SIS construction -- (q, rows, cols), mode, seed -- *and* the
        representation flag, so a snapshot only restores into an instance
        holding the same SIS instance in the same storage mode.
        """
        if self.int64_fast_path:
            return {"dense": self._dense}
        return {
            "sketches": {
                chunk: tuple(vector) for chunk, vector in self._sketches.items()
            }
        }

    def _restore_state(self, state) -> None:
        if self.int64_fast_path:
            dense = state["dense"]
            expected = (self.num_chunks, self.params.rows)
            if not isinstance(dense, np.ndarray) or dense.shape != expected:
                raise ValueError(
                    f"sis-l0 snapshot register shape {getattr(dense, 'shape', None)} "
                    f"!= {expected}"
                )
            self._dense = dense
        else:
            self._sketches = {
                int(chunk): list(vector)
                for chunk, vector in state["sketches"].items()
            }

    # -- queries -------------------------------------------------------------

    @property
    def sketches(self) -> dict[int, list[int]]:
        """Chunk index -> nonzero sketch register (absent = all-zero).

        Identical on both storage modes; dense mode derives the dict from
        the register array on demand.
        """
        if not self.int64_fast_path:
            return self._sketches
        nonzero = np.nonzero(self._dense.any(axis=1))[0]
        return {
            int(chunk): [int(v) for v in self._dense[chunk]] for chunk in nonzero
        }

    def nonzero_chunks(self) -> int:
        """``z``: the number of chunks whose sketch is nonzero."""
        if self.int64_fast_path:
            return int(np.count_nonzero(self._dense.any(axis=1)))
        return len(self._sketches)

    def query(self) -> int:
        """Algorithm 5's output: the nonzero-sketch count ``z``.

        Guarantee (Theorem 1.5): ``z <= L0 <= z * n^eps`` against any
        adversary that cannot solve the SIS instance.
        """
        return self.nonzero_chunks()

    def estimate_geometric(self) -> float:
        """``z * n^{eps/2}``: centers the two-sided error at ``n^{eps/2}``."""
        return self.nonzero_chunks() * math.sqrt(float(self.chunk_width))

    def approximation_factor(self) -> float:
        """The guaranteed multiplicative factor ``n^eps`` (= chunk width)."""
        return float(self.chunk_width)

    # -- accounting -----------------------------------------------------------

    def space_bits(self) -> int:
        """All chunk registers + matrix storage (or oracle key)."""
        return self.num_chunks * self.matrix.sketch_bits() + self.matrix.space_bits()

    def _state_fields(self) -> dict:
        return {
            "params": (
                self.params.rows,
                self.params.cols,
                self.params.modulus,
            ),
            "mode": self.matrix.mode,
            "nonzero_sketches": {
                chunk: tuple(sketch) for chunk, sketch in self.sketches.items()
            },
        }
