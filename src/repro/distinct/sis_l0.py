"""SIS-sketch L0 estimation on turnstile streams (Algorithm 5, Theorem 1.5).

The universe ``[n]`` is split into ``n^{1-eps}`` consecutive chunks of
``n^eps`` coordinates.  Every chunk keeps a sketch ``A f_chunk mod q`` where
``A in Z_q^{n^{c eps} x n^eps}`` is *one shared* SIS matrix (the paper is
explicit: "we use the same sketching matrix A on each chunk").  The answer
is the number of nonzero sketches ``z``, which satisfies

    z  <=  L0(f)  <=  z * n^eps

-- a multiplicative ``n^eps`` approximation -- *unless* the adversary placed
a nonzero chunk in the kernel of ``A``, i.e. produced a short integer
solution.  Under Assumption 2.17 a polynomial-time adversary cannot, and
that is the entire correctness argument (the proof of Theorem 1.5).

Works on turnstile streams (insertions and deletions): only the final
``||f||_inf <= poly(n)`` matters, signs do not.

Space: ``n^{1-eps}`` sketches of ``n^{c eps} log q`` bits each, plus the
matrix -- ``~O(n^{1-eps+c eps} + n^{(1+c) eps})`` in explicit mode; in
random-oracle mode the matrix term disappears (``~O(n^{1-eps+c eps})``),
exactly Theorem 1.5's two bounds.

Engineering note: all-zero sketches are stored sparsely (a dict of nonzero
sketches); ``space_bits`` still charges every chunk's register since the
paper's algorithm reserves them.  A ``nonzero_count`` is maintained
incrementally so queries are O(1).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.algorithm import StreamAlgorithm
from repro.core.stream import Update, aggregate_batch
from repro.crypto.random_oracle import RandomOracle
from repro.crypto.sis import SISMatrix, SISParams, sis_parameters_for_l0

__all__ = ["SisL0Estimator"]


class SisL0Estimator(StreamAlgorithm):
    """Algorithm 5: ``n^eps``-approximate L0 against bounded adversaries.

    Parameters
    ----------
    universe_size:
        ``n``.
    eps:
        Chunk exponent; the approximation factor is ``n^eps``.
    c:
        Sketch-height exponent in ``(0, 1/2)`` (Theorem 1.5's ``c``).
    mode:
        ``"explicit"`` stores the SIS matrix; ``"oracle"`` derives entries
        from a random oracle (the paper's improved space bound).
    """

    name = "sis-l0"

    def __init__(
        self,
        universe_size: int,
        eps: float = 0.5,
        c: float = 0.25,
        mode: str = "explicit",
        seed: int = 0,
        params: Optional[SISParams] = None,
    ) -> None:
        if universe_size < 2:
            raise ValueError(f"universe_size must be >= 2, got {universe_size}")
        super().__init__(seed=seed)
        self.universe_size = universe_size
        self.eps = eps
        self.c = c
        self.params = params or sis_parameters_for_l0(universe_size, eps, c)
        self.chunk_width = self.params.cols
        self.num_chunks = math.ceil(universe_size / self.chunk_width)
        oracle = RandomOracle(b"sis-l0|" + str(seed).encode()) if mode == "oracle" else None
        self.matrix = SISMatrix(self.params, mode=mode, seed=seed, oracle=oracle)
        # chunk index -> nonzero sketch vector (absent = all-zero sketch)
        self.sketches: dict[int, list[int]] = {}

    # -- streaming ---------------------------------------------------------

    def process(self, update: Update) -> None:
        if update.item >= self.universe_size:
            raise ValueError(
                f"item {update.item} outside universe [0, {self.universe_size})"
            )
        if update.delta == 0:
            return
        chunk, offset = divmod(update.item, self.chunk_width)
        sketch = self.sketches.get(chunk)
        if sketch is None:
            sketch = self.matrix.zero_sketch()
            self.sketches[chunk] = sketch
        self.matrix.accumulate(sketch, offset, update.delta)
        if not any(sketch):
            del self.sketches[chunk]

    def process_batch(self, items, deltas) -> None:
        """Batch update: numpy chunk/offset split + per-item aggregation.

        Deltas landing on the same coordinate are summed before touching the
        sketch (the sketch map is linear, so this is exact); sketches that
        net out to zero are evicted once at the end of the batch.  Modular
        accumulation stays in exact Python integers.
        """
        unique, aggregated = aggregate_batch(items, deltas, self.universe_size)
        touched: set[int] = set()
        for item, delta in zip(unique, aggregated):
            if delta == 0:
                continue
            chunk, offset = divmod(item, self.chunk_width)
            sketch = self.sketches.get(chunk)
            if sketch is None:
                sketch = self.matrix.zero_sketch()
                self.sketches[chunk] = sketch
            self.matrix.accumulate(sketch, offset, delta)
            touched.add(chunk)
        for chunk in touched:
            sketch = self.sketches.get(chunk)
            if sketch is not None and not any(sketch):
                del self.sketches[chunk]

    # -- queries -------------------------------------------------------------

    def nonzero_chunks(self) -> int:
        """``z``: the number of chunks whose sketch is nonzero."""
        return len(self.sketches)

    def query(self) -> int:
        """Algorithm 5's output: the nonzero-sketch count ``z``.

        Guarantee (Theorem 1.5): ``z <= L0 <= z * n^eps`` against any
        adversary that cannot solve the SIS instance.
        """
        return self.nonzero_chunks()

    def estimate_geometric(self) -> float:
        """``z * n^{eps/2}``: centers the two-sided error at ``n^{eps/2}``."""
        return self.nonzero_chunks() * math.sqrt(float(self.chunk_width))

    def approximation_factor(self) -> float:
        """The guaranteed multiplicative factor ``n^eps`` (= chunk width)."""
        return float(self.chunk_width)

    # -- accounting -----------------------------------------------------------

    def space_bits(self) -> int:
        """All chunk registers + matrix storage (or oracle key)."""
        return self.num_chunks * self.matrix.sketch_bits() + self.matrix.space_bits()

    def _state_fields(self) -> dict:
        return {
            "params": (
                self.params.rows,
                self.params.cols,
                self.params.modulus,
            ),
            "mode": self.matrix.mode,
            "nonzero_sketches": {
                chunk: tuple(sketch) for chunk, sketch in self.sketches.items()
            },
        }
