"""Distinct elements: SIS-sketch L0 (Theorem 1.5), exact and KMV baselines."""

from repro.distinct.exact_l0 import ExactL0
from repro.distinct.kmv import KMVEstimator
from repro.distinct.sis_l0 import SisL0Estimator

__all__ = ["ExactL0", "KMVEstimator", "SisL0Estimator"]
