"""Exact L0 (distinct elements) baseline for turnstile streams.

Linear space; the ground-truth oracle for every L0 experiment.  Also the
only *deterministic* option -- the paper's Theorem 1.9 (p = 0 case) shows a
white-box adversary forces Omega(n) space for any constant-factor
approximation, so exactness is essentially what deterministic robustness
costs.
"""

from __future__ import annotations

from repro.core.algorithm import DeterministicAlgorithm, MergeableSketch
from repro.core.space import bits_for_signed_int, bits_for_universe
from repro.core.stream import Update, aggregate_batch

__all__ = ["ExactL0"]


class ExactL0(MergeableSketch, DeterministicAlgorithm):
    """Tracks the full sparse frequency vector; answers L0 exactly."""

    name = "exact-l0"

    def __init__(self, universe_size: int) -> None:
        super().__init__()
        self.universe_size = universe_size
        self.counts: dict[int, int] = {}

    def process(self, update: Update) -> None:
        if update.item >= self.universe_size:
            raise ValueError(
                f"item {update.item} outside universe [0, {self.universe_size})"
            )
        value = self.counts.get(update.item, 0) + update.delta
        if value == 0:
            self.counts.pop(update.item, None)
        else:
            self.counts[update.item] = value

    def process_batch(self, items, deltas) -> None:
        """Aggregate per-item deltas with numpy, then one dict pass.

        Coordinate additions commute, so the final count dict is identical
        to the per-update path.
        """
        unique, aggregated = aggregate_batch(items, deltas, self.universe_size)
        for item, delta in zip(unique, aggregated):
            value = self.counts.get(item, 0) + delta
            if value == 0:
                self.counts.pop(item, None)
            else:
                self.counts[item] = value

    # -- merging (sharded engines) ----------------------------------------

    def _merge_key(self) -> tuple:
        return (self.universe_size,)

    def _merge_state(self, other: "ExactL0") -> None:
        """Sparse count dicts add coordinate-wise; zeros are evicted."""
        for item, delta in other.counts.items():
            value = self.counts.get(item, 0) + delta
            if value == 0:
                self.counts.pop(item, None)
            else:
                self.counts[item] = value

    def _snapshot_state(self) -> dict:
        return {"counts": dict(self.counts)}

    def _restore_state(self, state) -> None:
        self.counts = {int(k): v for k, v in state["counts"].items()}

    def query(self) -> int:
        return len(self.counts)

    def space_bits(self) -> int:
        id_bits = bits_for_universe(self.universe_size)
        return sum(
            id_bits + bits_for_signed_int(v) for v in self.counts.values()
        ) or 1

    def _state_fields(self) -> dict:
        return {"counts": dict(self.counts)}
