"""Robust hierarchical heavy hitters (Algorithm 4, Theorem 2.14).

Algorithm 2's epoch scheme with BernHHH instances in place of BernMG:
a Morris clock estimates the stream position, two BernHHH instances ride
exponentially growing length guesses, and queries go to the active
instance.  Space (Theorem 2.14):

    O((h/eps)(log n + log 1/eps + log log log m) + log log m)

versus the deterministic ``O((h/eps)(log m + log n))`` of Theorem 2.11 --
the same ``log m -> log log m`` trade as Theorem 1.1, once per hierarchy
level.
"""

from __future__ import annotations

from repro.core.algorithm import StreamAlgorithm
from repro.core.randomness import WitnessedRandom
from repro.core.stream import Update
from repro.heavyhitters.epochs import MorrisDoublingScheme
from repro.hhh.bern_hhh import BernHHH
from repro.hhh.domain import HierarchicalDomain, Prefix

__all__ = ["RobustHHH"]


class RobustHHH(StreamAlgorithm):
    """Algorithm 4: white-box robust HHH with no exact length counter."""

    name = "robust-hhh"

    def __init__(
        self,
        domain: HierarchicalDomain,
        gamma: float,
        accuracy: float,
        failure_probability_per_epoch: float = 0.05,
        seed: int = 0,
        capacity_per_level: int | None = None,
    ) -> None:
        if not 0 < accuracy <= gamma < 1:
            raise ValueError(
                f"need 0 < eps <= gamma < 1, got eps={accuracy}, gamma={gamma}"
            )
        super().__init__(seed=seed)
        self.domain = domain
        self.gamma = gamma
        self.accuracy = accuracy

        def make_instance(epoch: int, guess: int, random: WitnessedRandom) -> BernHHH:
            return BernHHH(
                domain=domain,
                length_guess=guess,
                gamma=gamma,
                accuracy=accuracy / 2.0,
                failure_probability=failure_probability_per_epoch,
                random=random,
                capacity_per_level=capacity_per_level,
            )

        self.scheme: MorrisDoublingScheme[BernHHH] = MorrisDoublingScheme(
            base=max(2.0, 16.0 / accuracy),
            factory=make_instance,
            random=self.random,
            clock_failure_probability=failure_probability_per_epoch,
        )

    def process(self, update: Update) -> None:
        if update.delta < 0:
            raise ValueError("the HHH algorithm expects insertions")
        self.scheme.tick(update.delta)
        self.scheme.broadcast(lambda instance: instance.process(update))

    def query(self) -> dict[Prefix, float]:
        """Approximate HHHs (Definition 2.10) from the active instance."""
        return self.scheme.active.hhh(
            length_estimate=self.scheme.length_estimate()
        )

    def estimate(self, prefix: Prefix) -> float:
        """Prefix-mass estimate from the active instance."""
        return self.scheme.active.estimate(prefix)

    def length_estimate(self) -> float:
        """The Morris clock's stream-position estimate."""
        return self.scheme.length_estimate()

    def space_bits(self) -> int:
        return self.scheme.space_bits(lambda instance: instance.space_bits())

    def _state_fields(self) -> dict:
        return {
            "epoch": self.scheme.epoch,
            "clock_exponent": self.scheme.clock.exponent,
            "instances": {
                j: {
                    "length_guess": inst.length_guess,
                    "probability": inst.probability,
                    "total_sampled": inst.inner.total,
                }
                for j, inst in self.scheme.instances.items()
            },
        }
