"""BernHHH (Algorithm 3): Bernoulli sampling feeding the deterministic HHH.

Identical shape to Algorithm 1: given an upper bound ``m`` on the stream
length, keep each update with probability
``p = C log(n/delta) / ((eps/2)^2 m)`` and feed the kept updates to the
[TMS12] hierarchical SpaceSaving with threshold ``eps/2``.  Theorem 2.12
(the [BY20] range-sampling theorem instantiated with the ``O(n)`` prefix
ranges of the hierarchy) gives white-box robustness of the sampling;
the inner algorithm is deterministic.

Estimates are scaled by ``1/p``; the conditioned counts that drive HHH
selection inherit an additive ``O(eps) m`` error (Lemma 2.13).
"""

from __future__ import annotations

from typing import Optional

from repro.core.randomness import WitnessedRandom
from repro.core.space import bits_for_float, bits_for_int, bits_for_universe
from repro.core.stream import Update
from repro.hhh.domain import HierarchicalDomain, Prefix
from repro.hhh.hss import HierarchicalSpaceSaving
from repro.sampling.bernoulli import bernoulli_rate

__all__ = ["BernHHH"]


class BernHHH:
    """One Algorithm-3 instance, valid while the stream is ``<= length_guess``."""

    def __init__(
        self,
        domain: HierarchicalDomain,
        length_guess: int,
        gamma: float,
        accuracy: float,
        failure_probability: float,
        random: Optional[WitnessedRandom] = None,
        seed: int = 0,
        capacity_per_level: Optional[int] = None,
    ) -> None:
        if length_guess < 1:
            raise ValueError(f"length_guess must be >= 1, got {length_guess}")
        self.domain = domain
        self.length_guess = length_guess
        self.gamma = gamma
        self.accuracy = accuracy
        self.random = random if random is not None else WitnessedRandom(seed=seed)
        self.probability = bernoulli_rate(
            domain.universe_size, length_guess, accuracy, failure_probability
        )
        self.inner = HierarchicalSpaceSaving(
            domain=domain,
            gamma=gamma,
            accuracy=accuracy / 2.0,
            capacity_per_level=capacity_per_level,
        )
        self.updates_seen = 0

    def process(self, update: Update) -> None:
        """Coin-flip the update into the inner HHH (one Binomial batch)."""
        if update.delta < 0:
            raise ValueError("BernHHH is defined for insertion streams")
        if update.delta == 0:
            return
        self.updates_seen += update.delta
        if update.delta == 1:
            kept = 1 if self.random.bernoulli(self.probability) else 0
        else:
            kept = self.random.binomial(update.delta, self.probability)
        if kept:
            self.inner.process(Update(update.item, kept))

    def hhh(self, length_estimate: Optional[float] = None) -> dict[Prefix, float]:
        """Approximate HHHs with ``1/p``-scaled conditioned-count estimates."""
        selected = self.inner.query()
        return {
            prefix: value / self.probability for prefix, value in selected.items()
        }

    def estimate(self, prefix: Prefix) -> float:
        """Scaled (1/p) underestimate of a prefix's subtree mass."""
        return self.inner.estimate(prefix) / self.probability

    def space_bits(self) -> int:
        """Inner HHH with counters sized for the *sampled* mass, plus rate.

        The per-counter registers hold at most ``O(log(n/delta)/eps^2)``
        sampled units, i.e. ``O(log log n + log 1/eps)`` bits -- the paper's
        ``log log log m`` refinement is absorbed here because the sampled
        mass, not ``m``, bounds the register.
        """
        sampled = max(1, self.inner.total)
        id_bits = bits_for_universe(self.domain.universe_size)
        counter_bits = bits_for_int(sampled)
        per_level = self.inner.capacity_per_level * (id_bits + counter_bits)
        return per_level * len(self.inner.levels) + bits_for_float(32)
