"""Hierarchical domains over [n] and exact HHH ground truth (Def 2.9/2.10).

A hierarchical domain of height ``h`` over ``[n]`` (Definition 2.9) is a
tree of prefixes; we implement the standard base-``b`` digit hierarchy (an
IP-style domain is ``b = 2, h = 32`` or byte-wise ``b = 256, h = 4``).  A
*prefix* is ``(level, value)``: level 0 are the leaves (the items
themselves), level ``h`` is the root; the level-``l`` ancestor of item ``x``
is ``x // b^l``.

:func:`exact_hhh` computes Definition 2.9's set exactly (bottom-up, with the
conditioned counts ``F(p)`` that exclude descendants already chosen), and is
the ground-truth oracle for every HHH experiment and test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stream import FrequencyVector

__all__ = ["Prefix", "HierarchicalDomain", "exact_hhh", "conditioned_count"]


@dataclass(frozen=True, order=True)
class Prefix:
    """A node of the hierarchy: ``level`` 0 = leaf, higher = coarser."""

    level: int
    value: int

    def __post_init__(self) -> None:
        if self.level < 0 or self.value < 0:
            raise ValueError("level and value must be non-negative")


class HierarchicalDomain:
    """Base-``branching`` digit hierarchy of height ``height`` over [n]."""

    def __init__(self, branching: int, height: int) -> None:
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        if height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        self.branching = branching
        self.height = height
        self.universe_size = branching**height

    def ancestor(self, item: int, level: int) -> Prefix:
        """The level-``level`` ancestor prefix of leaf ``item``."""
        self._check_item(item)
        if not 0 <= level <= self.height:
            raise ValueError(f"level {level} outside [0, {self.height}]")
        return Prefix(level, item // (self.branching**level))

    def ancestors(self, item: int) -> tuple[Prefix, ...]:
        """All ancestors of ``item``, leaf (level 0) to root (level h)."""
        self._check_item(item)
        result = []
        value = item
        for level in range(self.height + 1):
            result.append(Prefix(level, value))
            value //= self.branching
        return tuple(result)

    def parent(self, prefix: Prefix) -> Prefix:
        """The prefix one level up."""
        if prefix.level >= self.height:
            raise ValueError("the root has no parent")
        return Prefix(prefix.level + 1, prefix.value // self.branching)

    def is_ancestor(self, ancestor: Prefix, descendant: Prefix) -> bool:
        """Is ``descendant`` in the subtree of ``ancestor`` (inclusive)?"""
        if ancestor.level < descendant.level:
            return False
        shift = self.branching ** (ancestor.level - descendant.level)
        return descendant.value // shift == ancestor.value

    def leaves_below(self, prefix: Prefix) -> range:
        """The leaf range covered by ``prefix``."""
        width = self.branching**prefix.level
        return range(prefix.value * width, (prefix.value + 1) * width)

    def prefixes_at_level(self, level: int) -> range:
        """Prefix values present at a level (for exhaustive small-n tests)."""
        if not 0 <= level <= self.height:
            raise ValueError(f"level {level} outside [0, {self.height}]")
        return range(self.branching ** (self.height - level))

    def all_prefixes(self):
        """Every prefix of the domain, bottom-up (small n only)."""
        for level in range(self.height + 1):
            for value in self.prefixes_at_level(level):
                yield Prefix(level, value)

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(
                f"item {item} outside universe [0, {self.universe_size})"
            )


def conditioned_count(
    domain: HierarchicalDomain,
    frequencies: FrequencyVector,
    prefix: Prefix,
    chosen: set[Prefix],
) -> int:
    """``F(p)``: mass below ``p`` excluding leaves covered by ``chosen``.

    Definition 2.9's conditioned count, computed exactly from the frequency
    vector: sum ``f(e)`` over leaves ``e`` below ``p`` that are *not* below
    any prefix in ``chosen``.
    """
    total = 0
    for item, count in frequencies.items():
        if not domain.is_ancestor(prefix, Prefix(0, item)):
            continue
        covered = any(
            domain.is_ancestor(c, Prefix(0, item)) and c != prefix for c in chosen
        )
        if not covered:
            total += count
    return total


def exact_hhh(
    domain: HierarchicalDomain,
    frequencies: FrequencyVector,
    threshold: float,
) -> dict[Prefix, int]:
    """Definition 2.9's exact hierarchical heavy hitters.

    Bottom-up: level 0's HHHs are the plain heavy leaves
    (``f(e) >= threshold * m``); at level ``i`` a prefix joins if its
    conditioned count -- excluding leaves covered by HHHs from levels
    ``< i`` -- reaches ``threshold * m``.  Returns prefix -> conditioned
    count for every chosen prefix.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    # m is the total stream mass ||f||_1 (equal to the stream length on
    # unit-insertion streams; robust to batched updates).
    bar = threshold * frequencies.l1()
    chosen: dict[Prefix, int] = {}
    for level in range(domain.height + 1):
        # Candidates: ancestors of support leaves at this level.
        candidates = {
            domain.ancestor(item, level) for item, _ in frequencies.items()
        }
        lower = set(chosen)
        newly: dict[Prefix, int] = {}
        for prefix in sorted(candidates):
            f_p = conditioned_count(domain, frequencies, prefix, lower)
            if f_p >= bar:
                newly[prefix] = f_p
        chosen.update(newly)
    return chosen
