"""Hierarchical heavy hitters: domain, [TMS12] baseline, Algorithms 3-4."""

from repro.hhh.bern_hhh import BernHHH
from repro.hhh.domain import (
    HierarchicalDomain,
    Prefix,
    conditioned_count,
    exact_hhh,
)
from repro.hhh.hss import HierarchicalSpaceSaving, select_hhh
from repro.hhh.robust_hhh import RobustHHH

__all__ = [
    "BernHHH",
    "HierarchicalDomain",
    "HierarchicalSpaceSaving",
    "Prefix",
    "RobustHHH",
    "conditioned_count",
    "exact_hhh",
    "select_hhh",
]
