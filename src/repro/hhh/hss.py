"""Deterministic hierarchical heavy hitters via per-level SpaceSaving.

The paper's deterministic baseline (Theorem 2.11, [TMS12]) runs a
SpaceSaving summary per level of the hierarchy; each update inserts all of
its ``h + 1`` ancestor prefixes.  With per-level capacity ``O(h / eps)`` the
per-level estimation error is ``<= eps m / h`` and the bottom-up selection
below solves the HHH Problem of Definition 2.10:

* **accuracy** -- reported estimates are ``f*_p - eps m <= f_p <= f*_p``
  (SpaceSaving overestimates by at most the error bound, so we report
  ``estimate - error`` to land under the truth);
* **coverage** -- a prefix is selected whenever its estimated conditioned
  count could still reach ``gamma m``, so anything unselected has true
  conditioned count ``<= gamma m``.

Space: ``(h + 1)`` levels x ``O(h/eps)`` counters x ``(log n + log m)``
bits -- the ``O((h/eps)(log m + log n))`` of Theorem 2.11, and the ``log m``
factor the randomized Algorithm 4 removes.

The bottom-up selection walks levels 0..h keeping a *discount* per parent:
once a prefix is selected, its (over-)estimated mass is charged to its
ancestors so their conditioned counts shrink, mirroring Definition 2.9's
``F(p)``.
"""

from __future__ import annotations

import math

from repro.core.algorithm import DeterministicAlgorithm
from repro.core.stream import Update
from repro.heavyhitters.space_saving import SpaceSaving
from repro.hhh.domain import HierarchicalDomain, Prefix

__all__ = ["HierarchicalSpaceSaving", "select_hhh"]


def select_hhh(
    domain: HierarchicalDomain,
    level_estimates: list[dict[int, int]],
    level_errors: list[float],
    total: float,
    gamma: float,
) -> dict[Prefix, float]:
    """Bottom-up HHH selection from per-level (over-)estimates.

    ``level_estimates[l]`` maps prefix value -> estimate at level ``l``;
    ``level_errors[l]`` is that level's worst-case overestimate.  A prefix
    is selected when its discounted estimate reaches ``gamma * total``;
    the reported value is the *underestimate* ``discounted - error``
    (clamped at 0), giving Definition 2.10 accuracy.
    """
    selected: dict[Prefix, float] = {}
    # discount[p] = mass of already-selected descendants charged to p
    discount: dict[Prefix, float] = {}
    bar = gamma * total
    for level in range(domain.height + 1):
        estimates = level_estimates[level]
        error = level_errors[level]
        for value, estimate in estimates.items():
            prefix = Prefix(level, value)
            conditioned = estimate - discount.get(prefix, 0.0)
            if conditioned >= bar:
                selected[prefix] = max(0.0, conditioned - error)
                covered = float(estimate)
            else:
                covered = discount.get(prefix, 0.0)
            if level < domain.height and covered > 0:
                parent = domain.parent(prefix)
                discount[parent] = discount.get(parent, 0.0) + covered
        # Prefixes with discounts but no estimate entry still propagate up.
        for prefix, covered in list(discount.items()):
            if prefix.level == level and prefix.value not in estimates:
                if level < domain.height and covered > 0:
                    parent = domain.parent(prefix)
                    discount[parent] = discount.get(parent, 0.0) + covered
    return selected


class HierarchicalSpaceSaving(DeterministicAlgorithm):
    """Theorem 2.11's deterministic one-pass HHH algorithm."""

    name = "hierarchical-space-saving"

    def __init__(
        self,
        domain: HierarchicalDomain,
        gamma: float,
        accuracy: float,
        capacity_per_level: int | None = None,
    ) -> None:
        if not 0 < accuracy <= gamma < 1:
            raise ValueError(
                f"need 0 < eps <= gamma < 1, got eps={accuracy}, gamma={gamma}"
            )
        super().__init__()
        self.domain = domain
        self.gamma = gamma
        self.accuracy = accuracy
        levels = domain.height + 1
        if capacity_per_level is None:
            capacity_per_level = max(1, math.ceil(2 * levels / accuracy))
        self.capacity_per_level = capacity_per_level
        self.levels = [SpaceSaving(capacity_per_level) for _ in range(levels)]
        self.total = 0

    def process(self, update: Update) -> None:
        if update.delta < 0:
            raise ValueError("the HHH algorithm expects insertions")
        self.total += update.delta
        for prefix in self.domain.ancestors(update.item):
            self.levels[prefix.level].offer(prefix.value, update.delta)

    def level_error(self, level: int) -> float:
        """SpaceSaving overestimate bound at one level."""
        return self.levels[level].error_bound

    def query(self) -> dict[Prefix, float]:
        """The approximate HHH set with underestimated counts (Def 2.10)."""
        return select_hhh(
            domain=self.domain,
            level_estimates=[s.items() for s in self.levels],
            level_errors=[s.error_bound for s in self.levels],
            total=float(self.total),
            gamma=self.gamma - self.accuracy / 2.0,
        )

    def estimate(self, prefix: Prefix) -> float:
        """Underestimate of the prefix's (unconditioned) subtree mass."""
        level = self.levels[prefix.level]
        return max(0.0, level.estimate(prefix.value) - level.error_bound)

    def space_bits(self) -> int:
        return sum(
            level.space_bits(self.domain.universe_size) for level in self.levels
        )

    def _state_fields(self) -> dict:
        return {
            "total": self.total,
            "levels": tuple(dict(level.counters) for level in self.levels),
        }
