"""Incremental and sliding-window CRHF string fingerprints (Lemma 2.24).

Section 2.6: Karp-Rabin fingerprints are *not* robust to white-box
adversaries (Fermat collisions, see :mod:`repro.strings.karp_rabin`), so the
paper replaces them with the discrete-log CRHF ``h(U) = g^{enc(U)} mod p``,
which "can be computed as characters of U arrive sequentially".  This module
packages that computation as two cursor objects:

* :class:`StreamFingerprint` -- append-only prefix fingerprint with
  O(log kappa)-word state; supports ``snapshot()`` so Algorithm 6 can
  remember the digest at a candidate position and later *divide it out* to
  fingerprint a substring (the ``concat``/``drop_prefix`` identities).
* :class:`SlidingWindowFingerprint` -- fixed-width window over the stream
  (push right, pop left) used for the period-length window of Algorithm 6.
  Popping requires knowing the outgoing symbol; the window buffers its
  contents (an explicit, documented deviation from the paper's O(log T)-bit
  accounting, which charges the pattern-derived outgoing symbols to the
  read-only input).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.core.space import bits_for_int, bits_for_universe
from repro.crypto.crhf import CollisionResistantHash

__all__ = ["StreamFingerprint", "SlidingWindowFingerprint"]


class StreamFingerprint:
    """Append-only fingerprint of everything seen so far.

    ``digest`` after consuming symbols ``s_1 ... s_t`` equals
    ``g^{enc(s_1...s_t)} mod p`` where ``enc`` is the base-``sigma``
    encoding.  Equal digests imply equal strings unless the producer solved
    discrete log (collision resistance of the underlying CRHF).
    """

    def __init__(self, crhf: CollisionResistantHash, alphabet_size: int) -> None:
        if alphabet_size < 2:
            raise ValueError(f"alphabet_size must be >= 2, got {alphabet_size}")
        self.crhf = crhf
        self.alphabet_size = alphabet_size
        self.digest = crhf.empty_digest()
        self.length = 0

    def push(self, symbol: int) -> None:
        """Append one symbol."""
        self.digest = self.crhf.extend(self.digest, symbol, self.alphabet_size)
        self.length += 1

    def push_all(self, symbols: Iterable[int]) -> None:
        """Append a sequence of symbols."""
        for symbol in symbols:
            self.push(symbol)

    def snapshot(self) -> tuple[int, int]:
        """``(digest, length)`` pair identifying the current prefix."""
        return self.digest, self.length

    def substring_digest(self, prefix_snapshot: tuple[int, int]) -> int:
        """Digest of the substring strictly after a snapshotted prefix.

        If the snapshot was taken after position ``i`` and the cursor is now
        at position ``t``, returns the digest of symbols ``i+1 .. t`` --
        computed purely from two digests and the length difference, which is
        the composition property Algorithm 6 needs.
        """
        prefix_digest, prefix_length = prefix_snapshot
        suffix_length = self.length - prefix_length
        if suffix_length < 0:
            raise ValueError("snapshot is from the future")
        return self.crhf.drop_prefix(
            self.digest, prefix_digest, suffix_length, self.alphabet_size
        )

    def space_bits(self) -> int:
        """One group element plus a position counter."""
        return self.crhf.digest_bits() + bits_for_int(max(1, self.length))


class SlidingWindowFingerprint:
    """Fingerprint of the last ``width`` symbols of a stream.

    Maintains the digest of the window exactly: pushing a symbol appends it,
    and once the window is full the oldest symbol is divided back out using
    :meth:`CollisionResistantHash.drop_prefix` with a single-symbol prefix.
    """

    def __init__(
        self, crhf: CollisionResistantHash, alphabet_size: int, width: int
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if alphabet_size < 2:
            raise ValueError(f"alphabet_size must be >= 2, got {alphabet_size}")
        self.crhf = crhf
        self.alphabet_size = alphabet_size
        self.width = width
        self.digest = crhf.empty_digest()
        self._buffer: deque[int] = deque()
        self.position = 0

    @property
    def full(self) -> bool:
        return len(self._buffer) == self.width

    def push(self, symbol: int) -> Optional[int]:
        """Slide the window one symbol to the right.

        Returns the current window digest if the window is full after the
        push, else ``None``.
        """
        if self.full:
            outgoing = self._buffer.popleft()
            outgoing_digest = self.crhf.extend(
                self.crhf.empty_digest(), outgoing, self.alphabet_size
            )
            self.digest = self.crhf.drop_prefix(
                self.digest, outgoing_digest, len(self._buffer), self.alphabet_size
            )
        self.digest = self.crhf.extend(self.digest, symbol, self.alphabet_size)
        self._buffer.append(symbol)
        self.position += 1
        return self.digest if self.full else None

    def window(self) -> tuple[int, ...]:
        """Current window contents (oldest first)."""
        return tuple(self._buffer)

    def space_bits(self) -> int:
        """Digest + position counter + the buffered window symbols.

        The buffered symbols (``width * log sigma`` bits) are the documented
        deviation from the paper's O(log T) accounting -- see module
        docstring.
        """
        return (
            self.crhf.digest_bits()
            + bits_for_int(max(1, self.position))
            + self.width * bits_for_universe(self.alphabet_size)
        )
