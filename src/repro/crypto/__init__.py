"""Cryptographic substrate: CRHFs, random oracle, SIS, lattice attacks."""

from repro.crypto.crhf import CollisionResistantHash, CRHFParams, generate_crhf
from repro.crypto.fingerprint import SlidingWindowFingerprint, StreamFingerprint
from repro.crypto.lattice import (
    brute_force_short_kernel,
    gram_schmidt,
    kernel_lattice_basis,
    lll_reduce,
    lll_short_kernel,
)
from repro.crypto.modmath import (
    generator_mod_prime,
    is_probable_prime,
    modinv,
    next_prime,
    random_prime,
    random_safe_prime,
    subgroup_generator,
)
from repro.crypto.random_oracle import RandomOracle
from repro.crypto.sis import SISMatrix, SISParams, sis_parameters_for_l0

__all__ = [
    "CollisionResistantHash",
    "CRHFParams",
    "RandomOracle",
    "SISMatrix",
    "SISParams",
    "SlidingWindowFingerprint",
    "StreamFingerprint",
    "brute_force_short_kernel",
    "generate_crhf",
    "generator_mod_prime",
    "gram_schmidt",
    "is_probable_prime",
    "kernel_lattice_basis",
    "lll_reduce",
    "lll_short_kernel",
    "modinv",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    "sis_parameters_for_l0",
    "subgroup_generator",
]
