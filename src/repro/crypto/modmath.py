"""Modular arithmetic substrate: primality, safe primes, generators.

The paper's collision-resistant hash functions (Theorem 2.5, via the discrete
log assumption) and string fingerprints (Lemma 2.24) need: large primes,
*safe* primes ``p = 2q + 1``, generators of the order-``q`` subgroup of
``Z_p^*``, and modular inverses.  Everything here is deterministic given the
caller-supplied randomness, built on Python's arbitrary-precision integers.
"""

from __future__ import annotations

import functools
import random
from typing import Optional

__all__ = [
    "is_probable_prime",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    "modinv",
    "subgroup_generator",
    "generator_mod_prime",
]

# Deterministic Miller-Rabin witness sets: testing against these bases is
# *exact* for all n below the listed bounds (Sinclair/Jaeschke tables).
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3317044064679887385961981  # exact below this bound


def _miller_rabin_round(n: int, base: int) -> bool:
    """Return ``True`` if ``n`` passes one Miller-Rabin round with ``base``."""
    if base % n == 0:
        return True
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(base, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, extra_rounds: int = 8, rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    Exact for ``n < 3.3e24`` via fixed witness bases; larger values add
    ``extra_rounds`` random bases (error probability ``<= 4^-extra_rounds``).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for base in _DETERMINISTIC_BASES:
        if not _miller_rabin_round(n, base):
            return False
    if n < _DETERMINISTIC_BOUND:
        return True
    rng = rng or random.Random(n & 0xFFFFFFFF)
    for _ in range(extra_rounds):
        base = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, base):
            return False
    return True


@functools.lru_cache(maxsize=4096)
def next_prime(n: int) -> int:
    """Smallest prime ``>= n``.

    Memoized: every sketch constructor calls this with
    ``max(universe_size, width) + 1``, and experiment sweeps build thousands
    of sketches over the same handful of universes -- recomputing the
    Miller-Rabin walk each time was pure waste.  The function is pure, so
    caching is observationally transparent.
    """
    if n <= 2:
        return 2
    candidate = n | 1  # odd
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """A uniform-ish random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError(f"need bits >= 2, got {bits}")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> tuple[int, int]:
    """A random safe prime ``p = 2q + 1`` with ``bits`` bits; returns (p, q).

    Safe primes give a prime-order subgroup of ``Z_p^*`` of order ``q``,
    the standard setting for discrete-log-based CRHFs.
    """
    if bits < 4:
        raise ValueError(f"need bits >= 4 for a safe prime, got {bits}")
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p):
            return p, q


def modinv(a: int, modulus: int) -> int:
    """Modular inverse of ``a`` modulo ``modulus`` (raises if none exists)."""
    try:
        return pow(a, -1, modulus)
    except ValueError as exc:
        raise ValueError(f"{a} is not invertible modulo {modulus}") from exc


def subgroup_generator(p: int, q: int, rng: random.Random) -> int:
    """A generator of the order-``q`` subgroup of ``Z_p^*`` for safe prime p.

    For safe primes ``p = 2q + 1`` the squares of ``Z_p^*`` form the unique
    subgroup of prime order ``q``; any non-identity square generates it.
    """
    if p != 2 * q + 1:
        raise ValueError("expected a safe prime p = 2q + 1")
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, 2, p)
        if g not in (1, p - 1):
            return g


def generator_mod_prime(p: int, factors: tuple[int, ...], rng: random.Random) -> int:
    """A generator of all of ``Z_p^*`` given the prime factors of ``p - 1``.

    Used by the Karp-Rabin baseline, which the paper notes picks "a generator
    x" for its fingerprints.
    """
    order = p - 1
    while True:
        candidate = rng.randrange(2, p)
        if all(pow(candidate, order // f, p) != 1 for f in factors):
            return candidate
