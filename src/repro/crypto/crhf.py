"""Collision-resistant hash function family (Definition 2.4 / Theorem 2.5).

The paper's CRHF family (following Theorem 7.73 of Katz-Lindell, cited as
[KL14]) is discrete-log based: ``Gen(1^kappa)`` selects a safe prime ``p``
with ``O(log kappa)``... in practice ``kappa`` bits, a generator ``g`` of the
order-``q`` subgroup, and a second element ``y = g^s``; hashing a pair
``(x0, x1)`` with ``x0, x1 < q`` gives ``h(x0, x1) = g^{x0} y^{x1} mod p``.
Finding a collision reveals the discrete log ``s``, so collisions are as hard
as discrete log.

For arbitrary-length inputs we expose two modes:

* :meth:`CollisionResistantHash.hash_int` -- the exponent map
  ``x -> g^x mod p`` on integer encodings.  This is *incrementally computable*
  over a character stream (the property Section 2.6 needs): appending a
  character ``a`` over alphabet size ``sigma`` maps
  ``H -> H^sigma * g^a mod p``.  It compresses arbitrarily long strings into
  ``O(kappa)`` bits, and producing two colliding strings requires finding a
  multiplicative relation in the group, i.e. solving discrete log.
* :meth:`CollisionResistantHash.hash_pair` -- the textbook Pedersen pair
  hash, used where fixed-length compression suffices.

Security caveat (documented substitution): at the laptop-scale moduli used in
tests/benchmarks (64-256 bits) discrete log is *actually breakable* with
enough compute; experiment E12 exploits exactly this to exhibit the
bounded/unbounded separation the paper proves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.space import bits_for_int
from repro.crypto.modmath import modinv, random_safe_prime, subgroup_generator

__all__ = ["CRHFParams", "CollisionResistantHash", "generate_crhf"]


@dataclass(frozen=True)
class CRHFParams:
    """Public parameters of one family member (the index ``i`` of Def 2.4)."""

    p: int  # safe prime
    q: int  # (p - 1) / 2, prime subgroup order
    g: int  # generator of the order-q subgroup
    y: int  # second generator g^s (s discarded -- nobody knows it)
    security_bits: int

    def space_bits(self) -> int:
        """Bits to store the public parameters: O(kappa)."""
        return bits_for_int(self.p) + bits_for_int(self.g) + bits_for_int(self.y)


def generate_crhf(security_bits: int = 64, seed: int = 0) -> "CollisionResistantHash":
    """``Gen(1^kappa)``: sample a family member with ``security_bits`` bits.

    The sampling randomness is public (white-box model: the adversary sees
    parameters anyway); collision resistance rests on the discrete log being
    hard *given* the parameters, not on their secrecy.
    """
    if security_bits < 8:
        raise ValueError(f"security_bits must be >= 8, got {security_bits}")
    rng = random.Random(seed)
    p, q = random_safe_prime(security_bits, rng)
    g = subgroup_generator(p, q, rng)
    # y = g^s for random s; s is not retained (trapdoor-free).
    s = rng.randrange(1, q)
    y = pow(g, s, p)
    return CollisionResistantHash(CRHFParams(p=p, q=q, g=g, y=y, security_bits=security_bits))


class CollisionResistantHash:
    """One member ``h_i`` of the CRHF family, with incremental string mode."""

    def __init__(self, params: CRHFParams) -> None:
        self.params = params

    # -- fixed-length pair compression (Pedersen) -------------------------

    def hash_pair(self, x0: int, x1: int) -> int:
        """``h(x0, x1) = g^{x0} y^{x1} mod p`` with ``x0, x1 in [0, q)``."""
        q = self.params.q
        if not (0 <= x0 < q and 0 <= x1 < q):
            raise ValueError("pair-hash inputs must lie in [0, q)")
        p = self.params.p
        return (pow(self.params.g, x0, p) * pow(self.params.y, x1, p)) % p

    # -- exponent map (incremental over streams) -------------------------

    def hash_int(self, value: int) -> int:
        """``g^value mod p`` -- the streaming fingerprint map of Lemma 2.24."""
        if value < 0:
            raise ValueError(f"hash_int requires value >= 0, got {value}")
        return pow(self.params.g, value, self.params.p)

    def hash_bytes(self, data: bytes) -> int:
        """Hash a byte string via its base-256 integer encoding."""
        return self.hash_int(int.from_bytes(data, "big")) if data else self.hash_int(0)

    def hash_sequence(self, symbols, alphabet_size: int) -> int:
        """Hash a symbol sequence via its base-``alphabet_size`` encoding."""
        digest = self.empty_digest()
        for symbol in symbols:
            digest = self.extend(digest, symbol, alphabet_size)
        return digest

    def empty_digest(self) -> int:
        """Digest of the empty string: ``g^0 = 1``."""
        return 1

    def extend(self, digest: int, symbol: int, alphabet_size: int) -> int:
        """Append one symbol: ``H -> H^sigma * g^symbol mod p``.

        This realizes ``enc(U . a) = enc(U) * sigma + a`` in the exponent,
        so incremental hashing equals batch hashing (tested property).
        """
        if not 0 <= symbol < alphabet_size:
            raise ValueError(
                f"symbol {symbol} outside alphabet [0, {alphabet_size})"
            )
        p = self.params.p
        return (pow(digest, alphabet_size, p) * pow(self.params.g, symbol, p)) % p

    def concat(self, left_digest: int, right_digest: int, right_length: int, alphabet_size: int) -> int:
        """Digest of ``U . V`` from digests of ``U`` and ``V`` and ``|V|``.

        ``g^{enc(U) sigma^{|V|} + enc(V)} = (H_U)^{sigma^{|V|}} * H_V``.
        This is the crucial composition property Algorithm 6 relies on.
        """
        p = self.params.p
        shift = pow(alphabet_size, right_length, self.params.q)
        # Exponents live modulo q (the subgroup order), hence the pow above.
        return (pow(left_digest, shift, p) * right_digest) % p

    def drop_prefix(self, digest: int, prefix_digest: int, suffix_length: int, alphabet_size: int) -> int:
        """Digest of ``V`` given digests of ``U . V`` and ``U`` plus ``|V|``.

        Inverts :meth:`concat`: ``H_V = H_{UV} * (H_U^{sigma^{|V|}})^{-1}``.
        Enables sliding-window fingerprints (pop from the left).
        """
        p = self.params.p
        shift = pow(alphabet_size, suffix_length, self.params.q)
        shifted_prefix = pow(prefix_digest, shift, p)
        return (digest * modinv(shifted_prefix, p)) % p

    # -- accounting ----------------------------------------------------------

    def digest_bits(self) -> int:
        """Bits per stored digest: ``O(log kappa)`` in the paper's accounting.

        A digest is one group element, i.e. ``O(kappa)`` raw bits at security
        parameter ``kappa``; the paper's ``O(log kappa)``-bit statement of
        Theorem 2.5 counts the *output length index* ``m_i = O(log kappa)``
        in its own parametrization.  We charge the honest group-element size.
        """
        return bits_for_int(self.params.p)

    def space_bits(self) -> int:
        """Bits to store the public parameters."""
        return self.params.space_bits()
