"""Random oracle (Bellare-Rogaway model), instantiated with SHA-256.

Theorem 1.5's space improvement and Theorem 1.6 both work "in the random
oracle model ... In practice, one can use SHA256 as the random oracle" --
which is exactly what this module does.  The oracle is *publicly accessible*
(both the algorithm and the adversary may query it), gives uniform values
over a caller-specified range, and repeated queries give consistent answers.

The key point for space accounting: a sketching matrix whose entries are
``oracle(row, col)`` does not need to be stored -- only the (public) oracle
name/key does.  ``RandomOracle.space_bits()`` is therefore O(key length),
independent of how many entries are ever derived, which realizes the
``~O(n^{1-eps+c eps})`` (matrix-free) space bound of Theorem 1.5.
"""

from __future__ import annotations

import hashlib

__all__ = ["RandomOracle"]


class RandomOracle:
    """Deterministic, consistent, uniform function keyed by a public label.

    ``oracle.uniform(modulus, *coordinates)`` returns a value in
    ``[0, modulus)`` that is statistically uniform (rejection sampling over
    SHA-256 blocks) and depends only on the key and coordinates.
    """

    def __init__(self, key: bytes | str = b"repro-white-box") -> None:
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not key:
            raise ValueError("random-oracle key must be non-empty")
        self.key = key
        self.queries = 0

    def _digest_stream(self, payload: bytes):
        """Infinite stream of pseudorandom bytes for one query point."""
        counter = 0
        while True:
            block = hashlib.sha256(
                self.key + b"|" + payload + b"|" + counter.to_bytes(8, "big")
            ).digest()
            yield from block
            counter += 1

    def uniform(self, modulus: int, *coordinates: int) -> int:
        """Uniform value in ``[0, modulus)`` at the given query point.

        Uses rejection sampling so the output is exactly uniform rather than
        merely close (important for the SIS matrices, whose hardness theorem
        assumes uniform entries).
        """
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        self.queries += 1
        if modulus == 1:
            return 0
        payload = b"/".join(str(c).encode() for c in coordinates)
        n_bytes = (modulus.bit_length() + 7) // 8
        # Smallest power-of-256 window, rejected down to a multiple of modulus.
        window = 1 << (8 * n_bytes)
        limit = window - (window % modulus)
        stream = self._digest_stream(payload)
        while True:
            chunk = bytes(next(stream) for _ in range(n_bytes))
            value = int.from_bytes(chunk, "big")
            if value < limit:
                return value % modulus

    def bits(self, n_bits: int, *coordinates: int) -> int:
        """``n_bits`` pseudorandom bits at the query point."""
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        return self.uniform(1 << n_bits, *coordinates)

    def space_bits(self) -> int:
        """Bits to store the oracle's public key (the whole persistent state)."""
        return 8 * len(self.key)

    def __repr__(self) -> str:
        return f"RandomOracle(key={self.key!r}, queries={self.queries})"
