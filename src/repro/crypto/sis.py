"""Short Integer Solution (SIS) instances and sketches (Definition 2.15).

An SIS instance is a uniformly random matrix ``A in Z_q^{w x d}``; the
problem is to find a nonzero integer ``z`` with ``A z = 0 (mod q)`` and
``||z||`` small (Definition 2.15; the hardness regime is Theorem 2.16
[MP13], with the average-case-to-worst-case guarantee going back to Ajtai).

The streaming algorithms use ``A`` as a *linear sketch that is hard to
fool*: as long as the (computationally bounded) adversary cannot produce a
short kernel vector, a zero sketch certifies a zero chunk (Algorithm 5) and
a rank-deficient sketch certifies rank deficiency (Theorem 1.6).

Two materializations are provided:

* ``mode="explicit"`` -- entries drawn once from a seeded uniform source and
  stored (space charged for all ``w*d`` entries);
* ``mode="oracle"`` -- entries derived on the fly from a
  :class:`~repro.crypto.random_oracle.RandomOracle` (space charged only for
  the oracle key), realizing the random-oracle space bound of Theorem 1.5.

Arithmetic is exact on both of two paths.  The historical path uses Python
integers throughout: the moduli are ``poly(n)`` and can overflow fixed-width
numpy products.  When the modulus is small enough that every product and
partial sum provably fits an int64 (``q^2 * chunk_width < 2^63``), the
vectorized :meth:`SISMatrix.accumulate_batch` switches to an int64 numpy
path -- same values mod q, an order of magnitude faster -- and falls back
to exact object-dtype arithmetic otherwise.  Column values (and the int64
column matrix) are cached for speed; the caches are engineering artifacts
and are *not* charged to ``space_bits`` in oracle mode (the paper's
accounting: the column "can be generated on the fly via access to the
random oracle").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.space import bits_for_range
from repro.crypto.modmath import next_prime
from repro.crypto.random_oracle import RandomOracle

__all__ = ["SISParams", "SISMatrix", "sis_parameters_for_l0"]


@dataclass(frozen=True)
class SISParams:
    """Parameters ``(w, d, q, beta)`` of one SIS instance.

    ``w`` rows (the sketch dimension, ``n^{c eps}`` in Algorithm 5), ``d``
    columns (the chunk width ``n^eps``), modulus ``q = poly(n)``, and the
    norm bound ``beta`` under which kernel vectors count as "short".
    """

    rows: int
    cols: int
    modulus: int
    beta: float

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("SIS dimensions must be positive")
        if self.modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {self.modulus}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")


class SISMatrix:
    """A concrete SIS matrix usable as a streaming sketch.

    Parameters
    ----------
    params:
        Instance dimensions and hardness parameters.
    mode:
        ``"explicit"`` (store entries; seeded uniform) or ``"oracle"``
        (derive entries from a random oracle on demand).
    seed / oracle:
        Source of entries for the respective mode.
    """

    def __init__(
        self,
        params: SISParams,
        mode: str = "explicit",
        seed: int = 0,
        oracle: Optional[RandomOracle] = None,
    ) -> None:
        if mode not in ("explicit", "oracle"):
            raise ValueError(f"unknown mode {mode!r}")
        self.params = params
        self.mode = mode
        self._column_cache: dict[int, tuple[int, ...]] = {}
        self._columns_int64: Optional[np.ndarray] = None
        if mode == "explicit":
            rng = random.Random(seed)
            q = params.modulus
            self._columns = tuple(
                tuple(rng.randrange(q) for _ in range(params.rows))
                for _ in range(params.cols)
            )
            self.oracle = None
        else:
            self._columns = None
            self.oracle = oracle or RandomOracle(b"sis|" + str(seed).encode())

    # -- entry access ------------------------------------------------------

    def column(self, index: int) -> tuple[int, ...]:
        """Column ``A_k`` as a tuple of ``rows`` integers in ``[0, q)``."""
        if not 0 <= index < self.params.cols:
            raise IndexError(f"column {index} outside [0, {self.params.cols})")
        if self._columns is not None:
            return self._columns[index]
        cached = self._column_cache.get(index)
        if cached is None:
            q = self.params.modulus
            cached = tuple(
                self.oracle.uniform(q, row, index) for row in range(self.params.rows)
            )
            self._column_cache[index] = cached
        return cached

    def as_array(self) -> np.ndarray:
        """Materialize the full matrix (tests / attacks; dtype=object, exact)."""
        columns = [self.column(j) for j in range(self.params.cols)]
        return np.array(columns, dtype=object).T

    # -- int64 fast path ---------------------------------------------------

    @property
    def int64_compatible(self) -> bool:
        """Whether the int64 batch path is exact for this instance.

        The guard ``q^2 * chunk_width < 2^63`` bounds every product
        ``(delta mod q) * entry`` and every partial sum over a chunk's
        aggregated coordinates inside int64, so the vectorized arithmetic
        can never wrap.  Paper-default moduli (``q ~ n^3``) fail it for
        large ``n`` and keep the exact object path.
        """
        q = self.params.modulus
        return q * q * max(1, self.params.cols) < 2**63

    def int64_batch_limit(self) -> int:
        """How many ``(delta mod q) * entry`` terms may accumulate in int64.

        Callers scattering un-aggregated batches must split them at this
        length; each term is below ``q^2`` and the running register starts
        below ``q``, so ``limit * q^2 + q <= 2^62 + q < 2^63`` is safe.
        """
        q = self.params.modulus
        return max(1, 2**62 // (q * q))

    def columns_int64(self) -> np.ndarray:
        """The full matrix as a cached ``(cols, rows)`` int64 array.

        Only valid when :attr:`int64_compatible`; in oracle mode this
        materializes every column through the oracle once (a cache, like
        ``_column_cache`` -- not charged to ``space_bits``).
        """
        if not self.int64_compatible:
            raise OverflowError(
                "modulus too large for the int64 fast path "
                f"(q={self.params.modulus}, cols={self.params.cols})"
            )
        if self._columns_int64 is None:
            self._columns_int64 = np.array(
                [self.column(j) for j in range(self.params.cols)], dtype=np.int64
            ).reshape(self.params.cols, self.params.rows)
        return self._columns_int64

    # -- sketching ---------------------------------------------------------

    def zero_sketch(self) -> list[int]:
        """A fresh all-zero sketch vector (length ``rows``)."""
        return [0] * self.params.rows

    def apply(self, vector: Sequence[int]) -> tuple[int, ...]:
        """``A v mod q`` for an integer vector ``v`` of length ``cols``."""
        if len(vector) != self.params.cols:
            raise ValueError(
                f"vector length {len(vector)} != cols {self.params.cols}"
            )
        sketch = self.zero_sketch()
        for index, value in enumerate(vector):
            if value:
                self.accumulate(sketch, index, int(value))
        return tuple(sketch)

    def accumulate(self, sketch: list[int], index: int, delta: int) -> None:
        """In-place turnstile update: ``sketch += delta * A_index (mod q)``.

        This is line 4 of Algorithm 5: the stream changes coordinate ``k``
        of a chunk by ``delta``, so the chunk's sketch moves by
        ``delta * A_k``.  Exact integer arithmetic -- no overflow for any
        ``poly(n)`` modulus.
        """
        q = self.params.modulus
        column = self.column(index)
        for row in range(self.params.rows):
            sketch[row] = (sketch[row] + delta * column[row]) % q

    def accumulate_batch(self, sketch: list[int], offsets, deltas) -> None:
        """Vectorized turnstile update: ``sketch += sum_i deltas[i] * A_{offsets[i]}``.

        The batched form of :meth:`accumulate` used by the L0 estimator's
        chunk-grouped batch path.  When :attr:`int64_compatible` (the
        ``q^2 * chunk_width < 2^63`` regime) the whole contribution is one
        int64 gather-multiply-sum; otherwise it falls back to exact
        object-dtype numpy arithmetic.  Both paths reduce deltas mod q first
        (the sketch lives in ``Z_q``), so arbitrarily large Python-int
        deltas are handled exactly either way.
        """
        count = len(offsets)
        if count == 0:
            return
        q = self.params.modulus
        if self.int64_compatible and count <= self.int64_batch_limit():
            cols = self.columns_int64()
            offs = np.asarray(offsets, dtype=np.int64)
            reduced = np.array([int(d) % q for d in deltas], dtype=np.int64)
            contribution = (reduced[:, None] * cols[offs]).sum(axis=0)
            for row in range(self.params.rows):
                sketch[row] = (sketch[row] + int(contribution[row])) % q
            return
        gathered = np.array([self.column(int(o)) for o in offsets], dtype=object)
        reduced = np.array([int(d) % q for d in deltas], dtype=object)
        contribution = (reduced[:, None] * gathered).sum(axis=0)
        for row in range(self.params.rows):
            sketch[row] = (sketch[row] + int(contribution[row])) % q

    def is_short_kernel_vector(
        self, z: Sequence[int], infinity_bound: Optional[float] = None
    ) -> bool:
        """Check a claimed SIS solution: nonzero, short, and in the kernel."""
        if len(z) != self.params.cols:
            return False
        values = [int(v) for v in z]
        if not any(values):
            return False
        if math.sqrt(sum(v * v for v in values)) > self.params.beta:
            return False
        if infinity_bound is not None and max(abs(v) for v in values) > infinity_bound:
            return False
        return not any(self.apply(values))

    # -- accounting ----------------------------------------------------------

    def sketch_bits(self) -> int:
        """Bits for one sketch vector: ``rows * ceil(log2 q)``."""
        return self.params.rows * bits_for_range(self.params.modulus - 1)

    def space_bits(self) -> int:
        """Matrix storage cost: full entries (explicit) or oracle key only."""
        if self.mode == "explicit":
            entry_bits = bits_for_range(self.params.modulus - 1)
            return self.params.rows * self.params.cols * entry_bits
        return self.oracle.space_bits()


def sis_parameters_for_l0(n: int, eps: float, c: float) -> SISParams:
    """Algorithm 5's SIS parameters for universe size ``n``.

    Chunk width ``d = n^eps``, sketch rows ``w = n^{c eps}`` (at least 1),
    prime modulus ``q ~ n^3`` (any fixed ``poly(n)`` works; Theorem 1.5
    needs ``beta_inf = poly(n)`` and ``q >= beta * n^delta``), and
    ``beta = sqrt(d) * n`` covering every vector with entries bounded by
    ``n`` -- the frequency-vector regime ``||f||_inf <= poly(n)`` the
    theorem assumes.
    """
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if not 0 < c < 0.5:
        raise ValueError(f"c must be in (0, 1/2), got {c}")
    cols = max(1, round(n**eps))
    rows = max(1, round(n ** (c * eps)))
    modulus = next_prime(max(257, n**3))
    beta = float(math.sqrt(cols) * n)
    return SISParams(rows=rows, cols=cols, modulus=modulus, beta=beta)
