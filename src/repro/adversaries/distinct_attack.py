"""White-box attacks on distinct-element estimators.

*KMV*: the estimator keeps the k smallest hash values; the white-box
adversary sorts the universe by the (visible) hash and feeds either the
globally smallest-hashing items (estimate explodes toward ``n`` while the
true count is ``k``) or the largest-hashing items (estimate stays ``~k``
while the true count grows unboundedly).  Either direction defeats any
constant-factor guarantee -- the oblivious-model analysis dies with the
hash's secrecy.

*SIS L0* (Algorithm 5): the only attack surface is producing a short
kernel vector of the chunk matrix ``A``.  :func:`attack_sis_l0` hands the
adversary our strongest tools (brute force, then LLL) and streams the found
vector into one chunk, zeroing its sketch while the chunk holds nonzero
frequencies.  At experiment parameters this *succeeds on tiny instances and
fails (or costs exponentially) on realistic ones* -- the bounded/unbounded
separation of Theorem 1.5 versus Theorem 1.9 made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.core.stream import Update
from repro.crypto.lattice import brute_force_short_kernel, lll_short_kernel
from repro.distinct.kmv import KMVEstimator
from repro.distinct.sis_l0 import SisL0Estimator

__all__ = [
    "kmv_inflation_items",
    "kmv_suppression_items",
    "attack_kmv",
    "KMVAttackReport",
    "attack_sis_l0",
    "SisAttackReport",
]


@dataclass(frozen=True)
class KMVAttackReport:
    direction: str
    true_l0: int
    estimate: float
    ratio: float
    succeeded: bool


def kmv_inflation_items(kmv: KMVEstimator, count: int) -> list[int]:
    """The ``count`` items with globally smallest hash values."""
    ranked = sorted(range(kmv.universe_size), key=kmv.hash_value)
    return ranked[:count]


def kmv_suppression_items(kmv: KMVEstimator, count: int) -> list[int]:
    """The ``count`` items with globally largest hash values."""
    ranked = sorted(range(kmv.universe_size), key=kmv.hash_value, reverse=True)
    return ranked[:count]


def attack_kmv(
    kmv: KMVEstimator, direction: str = "inflate", factor_goal: float = 4.0
) -> KMVAttackReport:
    """Feed the adversarial item set; report the achieved distortion.

    ``inflate``: feed exactly ``k`` smallest-hashing items -> estimate ~ n.
    ``suppress``: feed ``n/2`` largest-hashing items -> estimate ~ k.
    Success = the estimate is off by more than ``factor_goal``.
    """
    if direction == "inflate":
        items = kmv_inflation_items(kmv, kmv.k)
    elif direction == "suppress":
        items = kmv_suppression_items(kmv, max(kmv.k * int(factor_goal) * 2, kmv.k + 1))
    else:
        raise ValueError(f"unknown direction {direction!r}")
    for item in items:
        kmv.feed(Update(item, 1))
    truth = len(set(items))
    estimate = kmv.query()
    ratio = max(estimate, 1.0) / truth if truth else float("inf")
    distortion = max(ratio, 1.0 / ratio) if ratio > 0 else float("inf")
    return KMVAttackReport(
        direction=direction,
        true_l0=truth,
        estimate=estimate,
        ratio=ratio,
        succeeded=distortion > factor_goal,
    )


@dataclass(frozen=True)
class SisAttackReport:
    method: str
    found: bool
    seconds: float
    candidates_tried: int
    estimator_fooled: bool
    true_l0: int
    reported: int


def attack_sis_l0(
    estimator: SisL0Estimator,
    brute_force_bound: int = 1,
    max_candidates: Optional[int] = 200_000,
    try_lll: bool = True,
) -> SisAttackReport:
    """Full SIS attack pipeline against Algorithm 5.

    1. Brute-force small-coefficient kernel vectors (cost counted);
    2. optionally LLL on the q-ary kernel lattice;
    3. on success, stream the vector into chunk 0 and check the estimator
       now reports 0 nonzero chunks despite a nonzero chunk.
    """
    # obs.timer always measures (the report keeps its wall time even
    # under REPRO_OBS=0) and lands the search in the same
    # repro_phase_seconds family as engine chunks and service requests.
    with obs.timer("attack.sis_search") as search:
        vector, tried = brute_force_short_kernel(
            estimator.matrix, coefficient_bound=brute_force_bound, max_candidates=max_candidates
        )
        method = "brute-force"
        if vector is None and try_lll:
            method = "lll"
            vector = lll_short_kernel(estimator.matrix)
    elapsed = search.seconds
    if vector is None:
        return SisAttackReport(
            method=method,
            found=False,
            seconds=elapsed,
            candidates_tried=tried,
            estimator_fooled=False,
            true_l0=0,
            reported=estimator.query(),
        )
    # Stream the kernel vector into chunk 0 (turnstile deltas).
    support = 0
    for offset, value in enumerate(vector):
        if value:
            estimator.feed(Update(offset, int(value)))
            support += 1
    reported = estimator.query()
    return SisAttackReport(
        method=method,
        found=True,
        seconds=elapsed,
        candidates_tried=tried,
        estimator_fooled=reported == 0 and support > 0,
        true_l0=support,
        reported=reported,
    )
