"""Adaptive stress adversaries -- the *negative controls* of the experiments.

The upper-bound theorems claim robustness; these adversaries try their best
to falsify that claim using full white-box access, and the experiments
record that they fail (within the stated failure probabilities):

* :class:`MorrisStressAdversary` -- adaptive stopping against a Morris
  counter: watches the exponent after every increment and steers toward
  the moment of maximum deviation.  Lemma 2.1 says the counter stays a
  ``(1 + eps)``-approximation anyway (fresh coins cannot be biased by
  scheduling).
* :class:`SampleEvasionAdversary` -- against BernMG-style algorithms:
  reads the Misra-Gries table out of the state and pours mass into items
  the sampler has *not yet* counted, trying to sneak a heavy hitter past
  the summary.  Theorem 2.3's point is that the coins are flipped after
  the update is committed, so evasion cannot work better than chance.
* :class:`ThresholdDancerAdversary` -- drives one planted item exactly
  around the reporting threshold, alternating with background noise chosen
  adversarially against the visible counters.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adversary import AdversaryView, WhiteBoxAdversary
from repro.core.stream import Update

__all__ = [
    "MorrisStressAdversary",
    "SampleEvasionAdversary",
    "ThresholdDancerAdversary",
]


class MorrisStressAdversary(WhiteBoxAdversary):
    """Adaptive stopping: halt the stream when the estimate looks worst.

    Sends unit increments; tracks the worst relative deviation it has
    *seen* (it knows the exact count -- it generated it).  If the deviation
    ever exceeds ``target_deviation`` it stops immediately, freezing the
    algorithm at its worst moment (the classic adaptive-stopping trick that
    breaks per-query-only guarantees).
    """

    name = "morris-adaptive-stopping"

    def __init__(self, max_rounds: int, target_deviation: float) -> None:
        super().__init__(budget=None)
        self.max_rounds = max_rounds
        self.target_deviation = target_deviation
        self.worst_deviation = 0.0
        self.worst_round: Optional[int] = None

    def next_update(self, view: AdversaryView) -> Optional[Update]:
        true_count = view.round_index  # every prior round sent one unit
        if view.outputs and true_count > 8:
            estimate = view.latest_output
            if estimate is not None and true_count > 0:
                deviation = abs(float(estimate) - true_count) / true_count
                if deviation > self.worst_deviation:
                    self.worst_deviation = deviation
                    self.worst_round = view.round_index
                if deviation > self.target_deviation:
                    return None  # freeze at the worst moment
        if view.round_index >= self.max_rounds:
            return None
        return Update(0, 1)


class SampleEvasionAdversary(WhiteBoxAdversary):
    """Pour a heavy hitter's mass into moments the sampler 'is not looking'.

    Strategy: plant item 0 as the target heavy hitter, but only send its
    updates at rounds where the previous update to item 0 was *not*
    sampled (visible in the BernMG counters of the state view); pad other
    rounds with distinct background items.  If evasion worked, item 0
    would end the stream epsilon-heavy yet absent from the summary.
    """

    name = "sample-evasion"

    def __init__(
        self, max_rounds: int, universe_size: int, target_item: int = 0
    ) -> None:
        super().__init__(budget=None)
        self.max_rounds = max_rounds
        self.universe_size = universe_size
        self.target_item = target_item
        self._background = 1
        self._last_target_count: Optional[float] = None

    def _target_tracked_count(self, view: AdversaryView) -> float:
        state = view.latest_state
        if state is None or "instances" not in state:
            return 0.0
        total = 0.0
        for instance in state["instances"].values():
            counters = instance.get("counters", {})
            total += counters.get(self.target_item, 0)
        return total

    def next_update(self, view: AdversaryView) -> Optional[Update]:
        if view.round_index >= self.max_rounds:
            return None
        tracked = self._target_tracked_count(view)
        send_target = (
            self._last_target_count is None or tracked == self._last_target_count
        )
        # Keep the target at half the stream regardless of evasion logic so
        # it is unambiguously heavy: alternate when evasion stalls.
        if view.round_index % 2 == 0 or send_target:
            self._last_target_count = tracked
            return Update(self.target_item, 1)
        self._background = 1 + (self._background % (self.universe_size - 1))
        return Update(self._background, 1)


class ThresholdDancerAdversary(WhiteBoxAdversary):
    """Keep a planted item dancing at the reporting threshold.

    Alternates target and adversarially chosen background mass so the
    target's true frequency hovers just above ``threshold`` of the stream;
    a robust epsilon-heavy-hitter algorithm must keep reporting it, so any
    round where it disappears from the answer is a failure the game
    validator catches.
    """

    name = "threshold-dancer"

    def __init__(
        self,
        max_rounds: int,
        universe_size: int,
        threshold: float,
        target_item: int = 0,
    ) -> None:
        super().__init__(budget=None)
        if not 0 < threshold < 1:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.max_rounds = max_rounds
        self.universe_size = universe_size
        self.threshold = threshold
        self.target_item = target_item
        self._target_mass = 0
        self._background = 1

    def next_update(self, view: AdversaryView) -> Optional[Update]:
        if view.round_index >= self.max_rounds:
            return None
        total = view.round_index + 1
        # Send target mass whenever its share would drop to 1.5x threshold.
        if self._target_mass < 1.5 * self.threshold * total:
            self._target_mass += 1
            return Update(self.target_item, 1)
        self._background = 1 + (self._background % (self.universe_size - 1))
        return Update(self._background, 1)
