"""White-box attacks on string fingerprints (§2.6).

*Karp-Rabin*: the adversary reads ``(p, x)`` from the state view and writes
down the Fermat collision -- two different strings with equal fingerprints
-- in O(1) arithmetic.  Success is structural, not probabilistic.

*CRHF fingerprints* (Lemma 2.24): the same adversary now needs a discrete
log relation.  :func:`attack_robust_fingerprint` performs the best generic
attack available to a T-bounded adversary (baby-step giant-step-flavored
random search within an operation budget) and reports failure counts --
the contrast row in experiment E08.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.crhf import CollisionResistantHash
from repro.strings.karp_rabin import KarpRabin, fermat_collision_pair

__all__ = [
    "attack_karp_rabin",
    "attack_robust_fingerprint",
    "KarpRabinAttackReport",
]


class KarpRabinAttackReport:
    """Outcome of a fingerprint collision attack."""

    def __init__(
        self,
        succeeded: bool,
        operations: int,
        collision: Optional[tuple[list[int], list[int]]] = None,
    ) -> None:
        self.succeeded = succeeded
        self.operations = operations
        self.collision = collision


def attack_karp_rabin(prime: int, x: int) -> KarpRabinAttackReport:
    """Break Karp-Rabin given its white-box parameters: O(1) operations.

    Returns the collision pair and verifies it (same fingerprint, distinct
    strings) -- the verification is part of the attack's constant cost.
    """
    u, v = fermat_collision_pair(prime, length=prime)
    fu = KarpRabin.of(u, prime, x)
    fv = KarpRabin.of(v, prime, x)
    succeeded = fu == fv and u != v
    return KarpRabinAttackReport(succeeded=succeeded, operations=1, collision=(u, v))


def attack_robust_fingerprint(
    crhf: CollisionResistantHash,
    alphabet_size: int = 2,
    string_length: int = 32,
    budget: int = 10_000,
    seed: int = 1,
) -> KarpRabinAttackReport:
    """Try to collide the CRHF fingerprint within an operation budget.

    Generic collision search: hash ``budget`` random strings and look for a
    birthday collision.  With digest space ``~ p >> budget^2`` the success
    probability is ``~ budget^2 / p`` -- negligible at the security sizes
    the experiments use, and the report shows 0 collisions found, the
    Lemma 2.24 contrast to Karp-Rabin's instant break.
    """
    import random

    rng = random.Random(seed)
    seen: dict[int, tuple[int, ...]] = {}
    for operation in range(1, budget + 1):
        candidate = tuple(
            rng.randrange(alphabet_size) for _ in range(string_length)
        )
        digest = crhf.hash_sequence(candidate, alphabet_size)
        previous = seen.get(digest)
        if previous is not None and previous != candidate:
            return KarpRabinAttackReport(
                succeeded=True,
                operations=operation,
                collision=(list(previous), list(candidate)),
            )
        seen[digest] = candidate
    return KarpRabinAttackReport(succeeded=False, operations=budget)
