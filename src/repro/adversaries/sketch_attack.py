"""White-box kernel attacks on linear sketches (the Theorem 1.9 narrative).

A linear sketch maintains ``S f`` for a matrix ``S`` with far fewer rows
than columns.  In the black-box model, [HW13] needed a sophisticated
adaptive procedure to *learn* ``S``; the white-box adversary reads it from
the state view on round one.  Any ``rows + 1`` columns of ``S`` are
linearly dependent, so an exact rational kernel vector ``v`` with support
``rows + 1`` exists; streaming ``v`` as turnstile updates leaves the sketch
at zero while ``F_2(v) = ||v||^2 > 0`` -- the estimator is blind to an
arbitrarily large moment.

Attacks provided for :class:`~repro.moments.ams.AMSSketch` and
:class:`~repro.heavyhitters.count_sketch.CountSketch` (whose linear map has
``depth * width`` rows), both as one-shot helpers and as game adversaries.
The computation the adversary performs (materializing ``s + 1`` columns and
eliminating) is ``poly(s)`` -- these attacks are cheap, which is exactly
why Theorem 1.9 holds even against *bounded* adversaries for non-crypto
sketches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adversary import AdversaryView, WhiteBoxAdversary
from repro.core.stream import Update
from repro.heavyhitters.count_sketch import CountSketch
from repro.linalg.modular import rational_kernel_vector
from repro.moments.ams import AMSSketch

__all__ = [
    "ams_kernel_vector",
    "count_sketch_kernel_vector",
    "KernelStreamAdversary",
    "ams_attack_updates",
]


def ams_kernel_vector(sketch: AMSSketch, support: Optional[int] = None) -> list[int]:
    """A nonzero integer vector in the kernel of the AMS sign matrix.

    Uses the first ``rows + 1`` items of the universe (any ``rows + 1``
    columns are dependent); the returned vector is indexed over the full
    universe, zero outside the chosen support.
    """
    columns = support if support is not None else sketch.rows + 1
    if columns > sketch.universe_size:
        raise ValueError(
            "universe too small to host a kernel vector of this support"
        )
    chosen = np.arange(columns, dtype=np.int64)
    submatrix = [sketch.sign_row(row, chosen).tolist() for row in range(sketch.rows)]
    small = rational_kernel_vector(submatrix)
    if small is None:
        raise RuntimeError(
            "no rational kernel found -- columns were unexpectedly independent; "
            "retry with a larger support"
        )
    vector = [0] * sketch.universe_size
    for item, value in enumerate(small):
        vector[item] = value
    return vector


def count_sketch_kernel_vector(sketch: CountSketch) -> list[int]:
    """A kernel vector of CountSketch's (depth*width)-row linear map."""
    columns = sketch.depth * sketch.width + 1
    if columns > sketch.universe_size:
        raise ValueError(
            "universe too small: need depth*width + 1 columns for dependence"
        )
    # Row (r, b): entry sign_r(i) if bucket_r(i) == b else 0 -- scattered
    # from the vectorized (depth, columns) bucket/sign structure instead
    # of evaluating O(depth * width * columns) scalar hashes.
    buckets, signs = sketch.sketch_matrix_row_structure(
        np.arange(columns, dtype=np.int64)
    )
    dense = np.zeros((sketch.depth * sketch.width, columns), dtype=np.int64)
    item_index = np.arange(columns)
    for row in range(sketch.depth):
        dense[row * sketch.width + buckets[row], item_index] = signs[row]
    small = rational_kernel_vector(dense.tolist())
    if small is None:
        raise RuntimeError("no rational kernel found for CountSketch map")
    vector = [0] * sketch.universe_size
    for item, value in enumerate(small):
        vector[item] = value
    return vector


def ams_attack_updates(sketch: AMSSketch) -> list[Update]:
    """The attack stream: one turnstile update per kernel coordinate."""
    vector = ams_kernel_vector(sketch)
    return [Update(item, value) for item, value in enumerate(vector) if value]


class KernelStreamAdversary(WhiteBoxAdversary):
    """Game adversary: read the sketch from the state, stream its kernel.

    Works against any algorithm whose state view exposes enough to
    reconstruct the sketch's linear map; concrete extraction is delegated
    to ``extract_kernel`` (defaults to the AMS extraction, reading the row
    seeds out of the state view exactly as the model permits).

    After the kernel has been streamed, the sketch is zero while the true
    frequency vector is the kernel vector: any F_2 answer of 0 (or any
    constant-factor answer) is wrong, and the game's validator records the
    failure.
    """

    name = "kernel-stream"

    def __init__(self, sketch_from_view, budget: Optional[int] = None) -> None:
        super().__init__(budget=budget)
        self.sketch_from_view = sketch_from_view
        self._queue: Optional[list[Update]] = None

    def next_update(self, view: AdversaryView) -> Optional[Update]:
        if self._queue is None:
            # Round 0 gives no state yet: send a probe so a view exists.
            if view.latest_state is None:
                return Update(0, 1)
            sketch = self.sketch_from_view(view.latest_state)
            # Charge the linear-algebra cost to the budget: ~ s^3.
            rows = getattr(sketch, "rows", None) or (
                sketch.depth * sketch.width
            )
            self.spend(rows**3)
            kernel = (
                ams_kernel_vector(sketch)
                if isinstance(sketch, AMSSketch)
                else count_sketch_kernel_vector(sketch)
            )
            # Undo the probe, then stream the kernel.
            self._queue = [Update(0, -1)] + [
                Update(item, value) for item, value in enumerate(kernel) if value
            ]
        if self._queue:
            return self._queue.pop(0)
        return None


def ams_sketch_from_view(state_view) -> AMSSketch:
    """Reconstruct an attackable AMS clone from a state view.

    The adversary only needs the row seeds and the (public) sign
    derivation; the clone's accumulators are irrelevant to the kernel.
    """
    seeds = list(state_view["row_seeds"])
    clone = AMSSketch.__new__(AMSSketch)
    clone.row_seeds = seeds
    clone.rows = len(seeds)
    # Universe size is part of the public problem statement; the caller's
    # factory captures it via closure when needed.  Default: enough columns
    # for the kernel.
    clone.universe_size = len(seeds) + 1
    clone.accumulators = [0] * len(seeds)
    return clone
