"""Black-box sketch learning vs. the one-shot white-box read ([HW13], §1.1).

The paper motivates the white-box model with [HW13]: a *black-box*
adversary -- seeing only outputs -- can still defeat a linear sketch, but
must run "a sophisticated attack ... to iteratively learn the matrix",
spending many adaptive rounds.  "On the other hand, the white-box adversary
immediately sees the sketching matrix when the algorithm is initiated."

This module makes the round-complexity gap measurable on a single-row AMS
sketch ``<Z, f>`` with sign vector ``Z in {-1,+1}^n``:

* black-box: stream ``e_0 + e_j``, observe the F2 estimate
  ``(Z_0 + Z_j)^2 in {0, 4}`` which reveals the *relative sign*
  ``Z_0 Z_j``; undo the probe with deletions; repeat for each ``j`` until
  two coordinates with equal signs are known, then stream the kernel vector
  ``e_i - e_j``.  Θ(1) expected probes to find a same-sign pair, Θ(n) to
  learn the full vector -- each probe is 2 insertions + 2 deletions +
  1 query of adaptive interaction;
* white-box: read the sign vector from the state view, stream the kernel:
  **zero** probes.

``compare_attack_rounds`` runs both against fresh sketches and reports the
interaction counts -- experiment E15.

The full reconstruction executes its probes in *adaptive blocks*: because
every probe's deletions restore the exact-integer sketch state, a block of
probes reads the same answers whether driven one interaction at a time or
through one fused pair-update + batched-estimate call
(:meth:`~repro.moments.ams.AMSSketch.query_after_pairs`).  The learner
charges the identical 5 interactions per probe either way -- the model's
accounting is untouched; only the per-probe Python overhead is gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.adversaries.sketch_attack import ams_kernel_vector
from repro.core.stream import Update
from repro.moments.ams import AMSSketch

#: Coordinates probed per fused block in :meth:`BlackBoxSignLearner.
#: learn_full_vector`; large enough to amortize the batched decode, small
#: enough that the learner stays adaptive between blocks.
DEFAULT_PROBE_BLOCK = 4096

__all__ = ["BlackBoxSignLearner", "compare_attack_rounds", "AttackRoundsReport"]


class BlackBoxSignLearner:
    """Learns a single-row AMS sign vector through output queries only.

    Drives the sketch directly (probe -> query -> unprobe); the only
    information consumed is ``sketch.query()`` -- black-box access.
    """

    def __init__(self, sketch: AMSSketch) -> None:
        if sketch.rows != 1:
            raise ValueError("the pedagogical learner handles rows = 1")
        self.sketch = sketch
        self.relative_signs: dict[int, int] = {0: 1}  # vs. coordinate 0
        self.interactions = 0

    def _probe_pair(self, j: int) -> int:
        """Stream e_0 + e_j, read the estimate, undo; returns Z_0 * Z_j."""
        self.sketch.feed(Update(0, 1))
        self.sketch.feed(Update(j, 1))
        estimate = self.sketch.query()  # (Z_0 + Z_j)^2: 0 or 4
        self.sketch.feed(Update(0, -1))
        self.sketch.feed(Update(j, -1))
        self.interactions += 5  # 4 updates + 1 query, all adaptive
        return 1 if estimate > 2 else -1

    def learn_coordinate(self, j: int) -> int:
        """Relative sign of coordinate ``j`` (cached)."""
        if j not in self.relative_signs:
            self.relative_signs[j] = self._probe_pair(j)
        return self.relative_signs[j]

    def probe_block(self, coordinates: Iterable[int]) -> None:
        """Probe a block of coordinates with one fused pair-estimate call.

        Runs the same interaction sequence as calling
        :meth:`learn_coordinate` on each uncached coordinate in order --
        probe pair, query, unprobe, 5 interactions charged apiece -- but
        executes it through
        :meth:`~repro.moments.ams.AMSSketch.query_after_pairs`, whose
        answers are bit-identical to driving the five interactions one
        probe at a time (each probe's deletions restore the exact-integer
        state, so consecutive probes are independent).  Learned signs and
        interaction counts therefore match the scalar loop exactly; only
        the Python-per-probe overhead is gone.
        """
        # Order-preserving dedup: a repeated coordinate is probed (and
        # charged) once, exactly as the caching scalar loop would.
        fresh = list(
            dict.fromkeys(
                j for j in coordinates if j not in self.relative_signs
            )
        )
        if not fresh:
            return
        estimates = self.sketch.query_after_pairs(
            0, np.asarray(fresh, dtype=np.int64)
        )
        self.interactions += 5 * len(fresh)
        for j, estimate in zip(fresh, estimates.tolist()):
            self.relative_signs[j] = 1 if estimate > 2 else -1

    def find_kernel_vector(self, max_coordinates: Optional[int] = None) -> list[int]:
        """A vector with ``<Z, v> = 0``: ``e_i - e_j`` for same-sign i, j.

        Probes coordinates until two share a sign (expected O(1) probes on
        a random sign vector, worst case the whole universe).
        """
        limit = max_coordinates or self.sketch.universe_size
        seen: dict[int, int] = {1: 0}
        for j in range(1, limit):
            sign = self.learn_coordinate(j)
            if sign in seen and seen[sign] != j:
                i = seen[sign]
                vector = [0] * self.sketch.universe_size
                vector[i] = 1
                vector[j] = -1
                return vector
            seen.setdefault(sign, j)
        raise RuntimeError("no same-sign pair found within the probe budget")

    def learn_full_vector(
        self, block_size: int = DEFAULT_PROBE_BLOCK
    ) -> list[int]:
        """All relative signs: the [HW13]-flavored full reconstruction.

        Probes the universe in adaptive blocks of ``block_size``
        coordinates (each block's probe set is chosen after the previous
        block's answers landed, skipping anything already learned), so
        the reconstruction runs no per-coordinate Python loop while
        charging exactly the interaction count of the one-at-a-time
        scan.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        n = self.sketch.universe_size
        for start in range(0, n, block_size):
            self.probe_block(range(start, min(start + block_size, n)))
        return [self.relative_signs[j] for j in range(n)]


@dataclass(frozen=True)
class AttackRoundsReport:
    """Interaction counts for the two attack modes on equal sketches."""

    universe_size: int
    black_box_interactions: int
    black_box_succeeded: bool
    white_box_interactions: int
    white_box_succeeded: bool
    full_learning_interactions: int


def compare_attack_rounds(universe_size: int = 64, seed: int = 0) -> AttackRoundsReport:
    """Run both attacks on fresh single-row AMS sketches."""
    # Black-box: kernel through probes.
    victim = AMSSketch(universe_size=universe_size, rows=1, seed=seed)
    learner = BlackBoxSignLearner(victim)
    kernel = learner.find_kernel_vector()
    for item, value in enumerate(kernel):
        if value:
            victim.feed(Update(item, value))
    black_box_ok = victim.query() == 0.0 and any(kernel)
    black_box_cost = learner.interactions

    # Full [HW13]-style reconstruction cost (for the table's Theta(n) row).
    full_victim = AMSSketch(universe_size=universe_size, rows=1, seed=seed + 1)
    full_learner = BlackBoxSignLearner(full_victim)
    full_learner.learn_full_vector()
    full_cost = full_learner.interactions

    # White-box: read the state, stream the kernel -- zero probes.
    wb_victim = AMSSketch(universe_size=universe_size, rows=1, seed=seed + 2)
    wb_kernel = ams_kernel_vector(wb_victim)
    for item, value in enumerate(wb_kernel):
        if value:
            wb_victim.feed(Update(item, value))
    white_box_ok = wb_victim.query() == 0.0 and any(wb_kernel)

    return AttackRoundsReport(
        universe_size=universe_size,
        black_box_interactions=black_box_cost,
        black_box_succeeded=black_box_ok,
        white_box_interactions=0,
        white_box_succeeded=white_box_ok,
        full_learning_interactions=full_cost,
    )
