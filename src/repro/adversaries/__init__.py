"""Adversaries: white-box attacks and adaptive stress (negative controls)."""

from repro.adversaries.blackbox_attack import (
    AttackRoundsReport,
    BlackBoxSignLearner,
    compare_attack_rounds,
)
from repro.adversaries.distinct_attack import (
    KMVAttackReport,
    SisAttackReport,
    attack_kmv,
    attack_sis_l0,
    kmv_inflation_items,
    kmv_suppression_items,
)
from repro.adversaries.fingerprint_attack import (
    KarpRabinAttackReport,
    attack_karp_rabin,
    attack_robust_fingerprint,
)
from repro.adversaries.sketch_attack import (
    KernelStreamAdversary,
    ams_attack_updates,
    ams_kernel_vector,
    count_sketch_kernel_vector,
)
from repro.adversaries.stress import (
    MorrisStressAdversary,
    SampleEvasionAdversary,
    ThresholdDancerAdversary,
)

__all__ = [
    "AttackRoundsReport",
    "BlackBoxSignLearner",
    "KMVAttackReport",
    "compare_attack_rounds",
    "KarpRabinAttackReport",
    "KernelStreamAdversary",
    "MorrisStressAdversary",
    "SampleEvasionAdversary",
    "SisAttackReport",
    "ThresholdDancerAdversary",
    "ams_attack_updates",
    "ams_kernel_vector",
    "attack_karp_rabin",
    "attack_kmv",
    "attack_robust_fingerprint",
    "attack_sis_l0",
    "count_sketch_kernel_vector",
    "kmv_inflation_items",
    "kmv_suppression_items",
]
