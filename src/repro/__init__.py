"""repro -- reproduction of "The White-Box Adversarial Data Stream Model".

Paper: Ajtai, Braverman, Jayram, Silwal, Sun, Woodruff, Zhou (PODS 2022,
arXiv:2204.09136).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the theorem-by-theorem reproduction record.

Subpackages
-----------
core
    Streams, the white-box game, witnessed randomness, space accounting.
crypto
    CRHFs (discrete log), random oracle, SIS instances, lattice attacks.
counters
    Morris counters, deterministic counters, OBDD/interval machinery.
sampling
    Bernoulli and reservoir sampling.
heavyhitters
    Misra-Gries, SpaceSaving, CountMin/CountSketch, Algorithms 1-2,
    the (phi, eps) CRHF variant.
hhh
    Hierarchical heavy hitters (domain, [TMS12] baseline, Algorithms 3-4).
distinct
    L0 estimation: SIS sketches (Algorithm 5), exact and KMV baselines.
moments
    Exact F_p, AMS, robust inner products (Corollary 2.8).
linalg
    Modular/exact algebra, rank decision (Theorem 1.6), row basis.
strings
    Periods, Karp-Rabin (+Fermat attack), robust matching (Algorithm 6).
graphs
    Vertex-arrival neighborhood identification (Theorems 1.3/1.4).
comm
    Communication problems, protocols, the Theorem 1.8 reduction.
lowerbounds
    Executable Theorems 1.4, 1.9, 1.10, 1.11.
adversaries
    White-box attacks and adaptive stress adversaries.
workloads
    Stream generators for experiments and examples.
experiments
    The theorem-by-theorem experiment harness (``python -m
    repro.experiments``).
parallel
    The scaling layer: mergeable-sketch sharding
    (``ShardedStreamEngine``), universe partitioning, asyncio ingestion.
distributed
    The deployment layer: wire-format sketch snapshots, process-parallel
    shard workers (``backend="process"``), checkpoint/recovery.
service
    The network layer: the ``SketchServer`` asyncio TCP collector,
    sync/async clients, and the multi-server ``SketchCoordinator``.
obs
    The telemetry layer: mergeable metrics registry, chunk-level
    tracing, drift/budget monitors, Prometheus exposition.
api
    The versioned stable import surface (``from repro.api import ...``).
"""

__version__ = "1.5.0"

from repro.core import (
    FrequencyVector,
    GameResult,
    MergeableSketch,
    StateView,
    StreamAlgorithm,
    StreamEngine,
    Update,
    WhiteBoxAdversary,
    WitnessedRandom,
    run_game,
)

__all__ = [
    "FrequencyVector",
    "GameResult",
    "MergeableSketch",
    "StateView",
    "StreamAlgorithm",
    "StreamEngine",
    "Update",
    "WhiteBoxAdversary",
    "WitnessedRandom",
    "__version__",
    "run_game",
]
